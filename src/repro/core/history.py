"""Result history: what was unsafe, when.

Post-incident analysis asks questions the live monitor cannot answer:
"was the bank top-k unsafe when the alarm went off at t=412?", "how long
was the embassy exposed?". :class:`TopKHistory` subscribes to a
:class:`~repro.core.events.ChangeTracker` and stores the *changes* (not
per-update snapshots — the result moves rarely), reconstructing the full
result set at any past timestamp on demand.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.events import ChangeTracker, TopKChange
from repro.model import SafetyRecord


@dataclass(frozen=True, slots=True)
class Exposure:
    """One interval a place spent inside the top-k."""

    place_id: int
    entered_at: float
    left_at: float | None  # None = still inside at the end of recording

    def duration(self, now: float) -> float:
        end = self.left_at if self.left_at is not None else now
        return end - self.entered_at


class TopKHistory:
    """Change-log-backed reconstruction of past top-k results."""

    def __init__(self, tracker: ChangeTracker) -> None:
        self._tracker = tracker
        tracker.subscribe(self._on_change)
        self._initial: dict[int, SafetyRecord] | None = None
        self._initial_time: float | None = None
        self._times: list[float] = []
        self._changes: list[TopKChange] = []

    def start(self, timestamp: float = 0.0) -> None:
        """Capture the baseline result (call right after initialize())."""
        self._initial = {
            r.place_id: r for r in self._tracker.monitor.top_k()
        }
        self._initial_time = timestamp

    def _on_change(self, change: TopKChange) -> None:
        if self._initial is None:
            raise RuntimeError("start() must be called before recording")
        self._times.append(change.timestamp)
        self._changes.append(change)

    @property
    def change_count(self) -> int:
        return len(self._changes)

    def result_at(self, timestamp: float) -> dict[int, SafetyRecord]:
        """The top-k membership as of ``timestamp``.

        Safeties in the returned records are those last reported *when
        each place entered or last changed through a recorded change* —
        membership is exact, the safety values are the change-time ones.
        """
        if self._initial is None or self._initial_time is None:
            raise RuntimeError("start() was never called")
        if timestamp < self._initial_time:
            raise ValueError(
                f"history begins at t={self._initial_time}, asked for "
                f"t={timestamp}"
            )
        state = dict(self._initial)
        upto = bisect.bisect_right(self._times, timestamp)
        for change in self._changes[:upto]:
            for record in change.left:
                state.pop(record.place_id, None)
            for record in change.entered:
                state[record.place_id] = record
        return state

    def was_topk(self, place_id: int, timestamp: float) -> bool:
        """Whether a place was top-k unsafe at a past instant."""
        return place_id in self.result_at(timestamp)

    def exposures(self, place_id: int) -> list[Exposure]:
        """Every interval the place spent inside the top-k."""
        if self._initial is None or self._initial_time is None:
            raise RuntimeError("start() was never called")
        intervals: list[Exposure] = []
        inside_since: float | None = (
            self._initial_time if place_id in self._initial else None
        )
        for change in self._changes:
            if inside_since is None:
                if any(r.place_id == place_id for r in change.entered):
                    inside_since = change.timestamp
            else:
                if any(r.place_id == place_id for r in change.left):
                    intervals.append(
                        Exposure(place_id, inside_since, change.timestamp)
                    )
                    inside_since = None
        if inside_since is not None:
            intervals.append(Exposure(place_id, inside_since, None))
        return intervals

    def total_exposure(self, place_id: int, now: float) -> float:
        """Cumulative time the place has spent top-k unsafe."""
        return sum(e.duration(now) for e in self.exposures(place_id))
