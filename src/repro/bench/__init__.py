"""Benchmark harness.

Builds paper-shaped workloads (road-network fleet + random places),
drives any monitor over a recorded stream, and reports both wall-clock
and machine-independent counters. The per-figure experiment definitions
live in :mod:`repro.experiments`; this package is the machinery they
share with the ``benchmarks/`` pytest suite and the CLI.
"""

from repro.bench.workload import Workload, build_workload
from repro.bench.harness import RunResult, run_monitor, MONITOR_FACTORIES
from repro.bench.guard import (
    GuardFinding,
    GuardReport,
    compare,
    load_baseline,
    write_baseline,
)
from repro.bench.reporting import format_table
from repro.bench.sweep import SweepPoint, sweep
from repro.bench.timeline import Timeline, TimelineSummary

__all__ = [
    "Workload",
    "build_workload",
    "RunResult",
    "run_monitor",
    "MONITOR_FACTORIES",
    "GuardFinding",
    "GuardReport",
    "compare",
    "load_baseline",
    "write_baseline",
    "format_table",
    "SweepPoint",
    "sweep",
    "Timeline",
    "TimelineSummary",
]
