"""RPL000 / RPL006 / RPL007 — source hygiene rules.

RPL000 keeps the suppression mechanism honest: every ``# reprolint:
disable`` must name registered rules and carry a ``-- reason`` so the
next reader knows *why* the invariant is waived. RPL006 (mutable
default arguments) and RPL007 (shadowed builtins) are the classic
Python traps the typing sweep keeps surfacing; they apply to the whole
linted tree, tests included.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, known_codes, rule

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)

#: builtins whose shadowing has bitten (or would silently break) this
#: codebase; deliberately curated — not every builtin name is worth a
#: violation.
SHADOWED_BUILTINS = frozenset(
    {
        "all",
        "any",
        "bool",
        "bytes",
        "callable",
        "dict",
        "dir",
        "enumerate",
        "eval",
        "filter",
        "float",
        "format",
        "frozenset",
        "hash",
        "id",
        "input",
        "int",
        "iter",
        "len",
        "list",
        "map",
        "max",
        "min",
        "next",
        "object",
        "open",
        "print",
        "property",
        "range",
        "repr",
        "reversed",
        "round",
        "set",
        "slice",
        "sorted",
        "str",
        "sum",
        "tuple",
        "type",
        "vars",
        "zip",
    }
)


@rule(
    "RPL000",
    "suppression-hygiene",
    "every reprolint disable comment names known rules and carries a "
    "'-- reason'",
)
def check_suppressions(
    source: SourceFile, project: ProjectIndex
) -> Iterator[Violation]:
    registered = known_codes()
    for suppression in source.suppressions:
        unknown = [c for c in suppression.codes if c not in registered]
        if unknown:
            yield Violation(
                code="RPL000",
                message=(
                    f"suppression names unknown rule(s) {', '.join(unknown)} "
                    "— see --list-rules for the registered codes"
                ),
                path=source.path,
                line=suppression.line,
            )
        if not suppression.reason:
            yield Violation(
                code="RPL000",
                message=(
                    "suppression without a reason — write '# reprolint: "
                    f"disable={','.join(suppression.codes) or 'RPL###'} -- "
                    "why this invariant is waived here'"
                ),
                path=source.path,
                line=suppression.line,
            )


@rule(
    "RPL006",
    "mutable-default-argument",
    "no list/dict/set (or factory-call) default argument values",
)
def check_mutable_defaults(
    source: SourceFile, project: ProjectIndex
) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield Violation(
                    code="RPL006",
                    message=(
                        f"mutable default argument in {node.name}() — the "
                        "default is created once and shared across calls; "
                        "use None (or an immutable sentinel) and build "
                        "inside the body"
                    ),
                    path=source.path,
                    line=default.lineno,
                    col=default.col_offset,
                )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


@rule(
    "RPL007",
    "shadowed-builtin",
    "no rebinding of load-bearing builtin names (params, assignments, "
    "defs, import aliases)",
)
def check_shadowed_builtins(
    source: SourceFile, project: ProjectIndex
) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in SHADOWED_BUILTINS:
                yield _shadow(source, node, f"function name '{node.name}'")
            for arg in _all_args(node.args):
                if arg.arg in SHADOWED_BUILTINS:
                    yield _shadow(source, arg, f"parameter '{arg.arg}'")
        elif isinstance(node, ast.ClassDef):
            if node.name in SHADOWED_BUILTINS:
                yield _shadow(source, node, f"class name '{node.name}'")
        elif isinstance(node, ast.Lambda):
            for arg in _all_args(node.args):
                if arg.arg in SHADOWED_BUILTINS:
                    yield _shadow(source, arg, f"lambda parameter '{arg.arg}'")
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for name in _bound_names(targets):
                if name.id in SHADOWED_BUILTINS:
                    yield _shadow(source, name, f"assignment to '{name.id}'")
        elif isinstance(node, ast.For):
            for name in _bound_names([node.target]):
                if name.id in SHADOWED_BUILTINS:
                    yield _shadow(source, name, f"loop variable '{name.id}'")
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                if bound in SHADOWED_BUILTINS:
                    yield _shadow(source, node, f"import binding '{bound}'")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                for name in _bound_names([gen.target]):
                    if name.id in SHADOWED_BUILTINS:
                        yield _shadow(
                            source, name, f"comprehension variable '{name.id}'"
                        )
        elif isinstance(node, ast.ExceptHandler):
            if node.name in SHADOWED_BUILTINS:
                yield _shadow(source, node, f"exception name '{node.name}'")
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                for name in _bound_names([node.optional_vars]):
                    if name.id in SHADOWED_BUILTINS:
                        yield _shadow(source, name, f"with-target '{name.id}'")


def _all_args(args: ast.arguments) -> list[ast.arg]:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        out.append(args.vararg)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


def _bound_names(targets: list[ast.expr]) -> Iterator[ast.Name]:
    for target in targets:
        if isinstance(target, ast.Name):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            yield from _bound_names(list(target.elts))
        elif isinstance(target, ast.Starred):
            yield from _bound_names([target.value])


def _shadow(source: SourceFile, node: ast.AST, what: str) -> Violation:
    return Violation(
        code="RPL007",
        message=(
            f"{what} shadows a builtin — rename it; shadowed builtins "
            "break unrelated code in the same scope silently"
        ),
        path=source.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
    )
