"""The observability layer: registry, tracing, exposition, wiring.

The two contracts that matter most:

* **reconciliation** — after a run, the bridged registry gauges equal
  the monitor's own ledgers field for field, for every scheme, sharded
  or not;
* **equivalence** — a session opened with grouped specs is bit-identical
  to one opened with the deprecated flat kwargs (which must warn).
"""

from __future__ import annotations

import json
import math
import urllib.request
from dataclasses import fields

import pytest

from repro.api import SCHEMES, DurabilitySpec, ShardSpec, open_session
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    Observability,
    ObsSpec,
    Tracer,
    coerce_observability,
    json_dump,
    parse_prometheus,
    render_prometheus,
    sync_monitor_metrics,
    write_chrome_trace,
)


# -- registry primitives -------------------------------------------------


class TestRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        total = registry.counter("ctup_things_total", "Things.")
        total.inc()
        total.inc(2.5)
        assert registry.value("ctup_things_total") == 3.5
        with pytest.raises(ValueError, match="only go up"):
            total.labels().inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ctup_level")
        gauge.set(10.0)
        gauge.inc(5)
        gauge.labels().dec(2)
        assert registry.value("ctup_level") == 13.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ctup_lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        child = hist.labels()
        assert child.cumulative() == [1, 3]  # le=0.1 -> 1, le=1.0 -> 3
        assert child.count == 4  # +Inf picks up the overflow
        assert child.total == pytest.approx(6.05)

    def test_labels_key_children(self):
        registry = MetricsRegistry()
        family = registry.counter("ctup_ops_total", labelnames=("op",))
        family.labels(op="append").inc(3)
        family.labels(op="replay").inc()
        assert registry.value("ctup_ops_total", op="append") == 3.0
        assert registry.value("ctup_ops_total", op="replay") == 1.0
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(kind="append")

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("ctup_x_total")
        assert registry.counter("ctup_x_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("ctup_x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("2bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ctup_ok", labelnames=("bad-label",))

    def test_null_registry_swallows_everything(self):
        registry = NullRegistry()
        registry.counter("anything").labels(x=1).inc()
        registry.histogram("h").observe(1.0)
        assert registry.families() == []
        assert not registry.enabled


# -- tracing -------------------------------------------------------------


class TestTracer:
    def test_span_times_and_buffers(self):
        tracer = Tracer(capacity=8)
        with tracer.span("work", cat="test", items=3):
            pass
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].cat == "test"
        assert spans[0].args["items"] == 3
        assert spans[0].dur_us >= 0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for n in range(5):
            tracer.record(f"s{n}", "test", 0.0, 0.001)
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.emitted == 5

    def test_chrome_trace_schema(self, tmp_path):
        tracer = Tracer()
        tracer.record("maintain", "monitor", 1.0, 0.002, scheme="opt")
        with tracer.span("kernel.burst", cat="kernel", moves=7):
            pass
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer.spans(), path)
        assert written == 2
        events = json.loads(path.read_text())
        assert isinstance(events, list) and len(events) == 2
        for event in events:
            assert event["ph"] == "X"  # complete events only
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["pid"] == 1 and "tid" in event
            assert event["name"] and event["cat"]
        assert events[0]["args"] == {"scheme": "opt"}


# -- exposition ----------------------------------------------------------


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("ctup_ops_total", "Ops.", labelnames=("op",)).labels(
            op='we"ird\n'
        ).inc(2)
        registry.gauge("ctup_sk", "SK.").set(math.inf)
        registry.histogram("ctup_lat", "Latency.", buckets=(0.1,)).observe(0.05)
        return registry

    def test_render_parse_round_trip(self):
        registry = self._populated()
        text = render_prometheus(registry)
        samples = parse_prometheus(text)
        assert samples[("ctup_ops_total", (("op", 'we"ird\n'),))] == 2.0
        assert samples[("ctup_sk", ())] == math.inf
        assert samples[("ctup_lat_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("ctup_lat_count", ())] == 1.0

    def test_parser_is_strict(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus("undeclared_metric 1\n")
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE x sideways\nx 1\n")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE x counter\nx one two three\n")
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("# TYPE x counter\nx 1\nx 2\n")

    def test_json_dump_shape(self):
        doc = json_dump(self._populated())
        assert set(doc["metrics"]) == {"ctup_ops_total", "ctup_sk", "ctup_lat"}
        hist = doc["metrics"]["ctup_lat"]["samples"][0]
        assert hist["count"] == 1 and "buckets" in hist

    def test_server_serves_both_formats(self):
        registry = self._populated()
        synced = []
        with MetricsServer(registry, port=0, sync=lambda: synced.append(1)) as server:
            text = urllib.request.urlopen(server.url).read().decode()
            assert parse_prometheus(text)
            doc = json.loads(
                urllib.request.urlopen(server.url + ".json").read()
            )
            assert "ctup_sk" in doc["metrics"]
        assert synced  # the sync callback ran before each scrape


# -- spec coercion -------------------------------------------------------


class TestObsSpec:
    def test_disabled_spec_coerces_to_none(self):
        assert coerce_observability(None) is None
        assert coerce_observability(ObsSpec(metrics=False)) is None

    def test_enabled_spec_builds_a_bundle(self):
        obs = coerce_observability(ObsSpec(metrics=True, trace=True))
        assert isinstance(obs, Observability)
        assert obs.registry.enabled
        assert isinstance(obs.tracer, Tracer)
        assert coerce_observability(obs) is obs

    def test_serve_port_implies_metrics(self):
        obs = coerce_observability(ObsSpec(metrics=False, serve_port=0))
        assert obs is not None and obs.registry.enabled

    def test_rejects_wrong_types(self):
        with pytest.raises(TypeError, match="obs="):
            coerce_observability({"metrics": True})


# -- reconciliation: registry == ledgers, every scheme ------------------


class TestReconciliation:
    @pytest.mark.parametrize("shards", [0, 4])
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_bridged_gauges_equal_ledgers(
        self, scheme, shards, small_config, small_places, small_units, small_stream
    ):
        session = open_session(
            scheme,
            places=small_places,
            units=small_units,
            config=small_config,
            shard=ShardSpec(shards=shards),
            obs=ObsSpec(metrics=True),
        )
        session.start()
        session.run(small_stream)
        session.sync_metrics()
        registry = session.observability.registry
        monitor = session.monitor
        if shards:
            counters = monitor.merged_counters()
            io = monitor.merged_io()
            unit_stats = monitor.merged_unit_stats()
        else:
            counters = monitor.counters
            io = monitor.store.io_stats
            unit_stats = monitor.units.stats
        for name, ledger in (
            ("ctup_monitor_counters", counters),
            ("ctup_io_stats", io),
            ("ctup_unit_kernel_stats", unit_stats),
        ):
            for f in fields(ledger):
                assert registry.value(
                    name, scheme=monitor.name, field=f.name
                ) == pytest.approx(float(getattr(ledger, f.name))), (
                    f"{name}.{f.name} out of sync"
                )
        if shards:
            assert registry.value(
                "ctup_shard_deliveries", kind="full"
            ) == float(monitor.full_deliveries)
            assert registry.value(
                "ctup_shard_deliveries", kind="sync"
            ) == float(monitor.sync_deliveries)
            for f in fields(monitor.merger.stats):
                assert registry.value(
                    "ctup_merge_stats", scheme=monitor.name, field=f.name
                ) == pytest.approx(float(getattr(monitor.merger.stats, f.name)))
        # the hook-stream counters agree with the session too.
        assert registry.value("ctup_session_updates_total") == float(
            len(small_stream)
        )
        assert registry.value("ctup_session_sk") == pytest.approx(
            monitor.sk()
        )

    def test_prometheus_text_parses_after_a_run(
        self, small_config, small_places, small_units, small_stream
    ):
        session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
            obs=ObsSpec(metrics=True),
        )
        session.start()
        session.run(small_stream)
        samples = parse_prometheus(session.metrics_text())
        assert samples[("ctup_session_updates_total", ())] == float(
            len(small_stream)
        )

    def test_metrics_text_requires_observability(
        self, small_config, small_places, small_units
    ):
        session = open_session(
            "opt", places=small_places, units=small_units, config=small_config
        )
        with pytest.raises(RuntimeError, match="no observability"):
            session.metrics_text()


# -- flat-kwargs shim: warns, and produces identical sessions -----------


def _fingerprint(session):
    monitor = session.monitor
    return {
        "topk": [(r.place_id, r.safety) for r in monitor.top_k()],
        "sk": monitor.sk(),
        "counters": {
            name: value
            for name, value in monitor.counters.as_dict().items()
            if not name.startswith("time_")
        },
        "updates": session.updates_processed,
    }


class TestFlatKwargShim:
    def test_flat_and_spec_sessions_are_bit_identical(
        self, small_config, small_places, small_units, small_stream
    ):
        spec_session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
            shard=ShardSpec(shards=3, parallelism=2),
            batch_size=8,
        )
        with pytest.warns(DeprecationWarning, match="flat keyword"):
            flat_session = open_session(
                "opt",
                places=small_places,
                units=small_units,
                config=small_config,
                shards=3,
                parallelism=2,
                batch_size=8,
            )
        for session in (spec_session, flat_session):
            session.start()
            session.run(small_stream)
        assert _fingerprint(spec_session) == _fingerprint(flat_session)

    def test_flat_durability_matches_spec(
        self, tmp_path, small_config, small_places, small_units, small_stream
    ):
        def run(**kwargs):
            session = open_session(
                "opt",
                places=small_places,
                units=small_units,
                config=small_config,
                batch_size=8,
                **kwargs,
            )
            with session:
                session.start()
                session.run(small_stream)
                return _fingerprint(session)

        spec = run(durability=DurabilitySpec(tmp_path / "a", every=2))
        with pytest.warns(DeprecationWarning, match="flat keyword"):
            flat = run(checkpoint_dir=tmp_path / "b", checkpoint_every=2)
        assert spec == flat

    def test_conflicting_groupings_rejected(
        self, small_config, small_places, small_units
    ):
        with pytest.raises(TypeError, match="not both"):
            open_session(
                "opt",
                places=small_places,
                units=small_units,
                config=small_config,
                shard=ShardSpec(shards=2),
                shards=2,
            )

    def test_package_internals_never_warn(self, recwarn):
        # pyproject's filterwarnings turns any repro-attributed
        # DeprecationWarning into an error; a spec-based call must not
        # trip the shim at all.
        import warnings

        from repro.workloads import generate_places, generate_units

        from repro.core import CTUPConfig

        config = CTUPConfig(k=3)
        places = generate_places(100, seed=5)
        units = generate_units(8, config.protection_range, seed=6)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            open_session(
                "basic",
                places=places,
                units=units,
                config=config,
                shard=ShardSpec(shards=2),
            )


# -- tracing through a real session -------------------------------------


class TestSessionTracing:
    def test_span_taxonomy_covers_the_pipeline(
        self, tmp_path, small_config, small_places, small_units, small_stream
    ):
        session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
            shard=ShardSpec(shards=3),
            batch_size=8,
            durability=DurabilitySpec(tmp_path, every=2),
            obs=ObsSpec(metrics=False, trace=True),
        )
        with session:
            session.start()
            session.run(small_stream)
        tracer = session.observability.tracer
        names = {span.name for span in tracer.spans()}
        cats = {span.cat for span in tracer.spans()}
        assert "session.flush" in names
        assert "shard.drain" in names
        assert "topk.merge" in names
        assert "journal.append" in names
        assert "checkpoint.write" in names
        assert {"session", "shard", "state"} <= cats
        path = tmp_path / "out.json"
        write_chrome_trace(tracer.spans(), path)
        assert json.loads(path.read_text())  # valid, non-empty

    def test_single_hook_instance_accepted(
        self, small_config, small_places, small_units, small_stream
    ):
        from repro.engine.hooks import MonitorHooks

        class CountHook(MonitorHooks):
            seen = 0

            def on_update_end(self, update, report):
                CountHook.seen += 1

        session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
            hooks=CountHook(),  # a bare hook, not a sequence
        )
        session.start()
        session.run(small_stream)
        assert CountHook.seen == len(small_stream)


# -- the CLI flags -------------------------------------------------------


class TestCliObsFlags:
    def test_simulate_metrics_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "simulate",
                    "suburbia",
                    "--updates",
                    "60",
                    "--places",
                    "400",
                    "--units",
                    "10",
                    "--metrics",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        start = out.index("# HELP")
        samples = parse_prometheus(out[start:])
        assert samples[("ctup_session_updates_total", ())] == 60.0
        events = json.loads(trace_path.read_text())
        assert events and all(event["ph"] == "X" for event in events)
