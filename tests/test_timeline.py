"""Per-update time-series collection."""

import math

import pytest

from repro.bench.timeline import Timeline
from repro.core import OptCTUP


@pytest.fixture
def recorded(small_config, small_places, small_units, small_stream):
    monitor = OptCTUP(small_config, small_places, small_units)
    monitor.initialize()
    timeline = Timeline()
    timeline.record(monitor, small_stream)
    return timeline, monitor


class TestRecording:
    def test_one_sample_per_update(self, recorded, small_stream):
        timeline, _ = recorded
        assert len(timeline) == len(small_stream)
        assert len(timeline.maintained) == len(small_stream)
        assert len(timeline.update_seconds) == len(small_stream)

    def test_sk_samples_match_monitor(self, recorded):
        timeline, monitor = recorded
        assert timeline.sk[-1] == monitor.sk()

    def test_maintained_positive(self, recorded):
        timeline, _ = recorded
        assert all(m > 0 for m in timeline.maintained)


class TestSummary:
    def test_summary_fields(self, recorded, small_stream):
        timeline, _ = recorded
        summary = timeline.summary()
        assert summary.updates == len(small_stream)
        assert summary.sk_min <= summary.sk_start
        assert summary.sk_min <= summary.sk_end
        assert summary.maintained_max >= summary.maintained_mean
        assert summary.accesses_total >= summary.updates_with_access
        assert summary.update_ms_p50 <= summary.update_ms_p95
        assert summary.update_ms_p95 <= summary.update_ms_max

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            Timeline().summary()

    def test_sk_changes_counted(self, recorded):
        timeline, _ = recorded
        summary = timeline.summary()
        manual = sum(
            1 for a, b in zip(timeline.sk, timeline.sk[1:]) if a != b
        )
        assert summary.sk_changes == manual


class TestSparkline:
    def test_width_respected(self, recorded):
        timeline, _ = recorded
        line = timeline.sparkline(width=40)
        assert 0 < len(line) <= 40

    def test_short_series_not_padded(self):
        timeline = Timeline()
        timeline.maintained = [1, 5, 3]
        assert len(timeline.sparkline(width=40)) == 3

    def test_custom_series(self, recorded):
        timeline, _ = recorded
        line = timeline.sparkline(values=timeline.sk, width=30)
        assert line

    def test_empty_series(self):
        assert Timeline().sparkline() == ""

    def test_constant_series(self):
        timeline = Timeline()
        assert timeline.sparkline(values=[2.0, 2.0, 2.0]) == "▁▁▁"

    def test_infinite_values_rendered_as_dots(self):
        timeline = Timeline()
        line = timeline.sparkline(values=[math.inf, 1.0, 2.0])
        assert line[0] == "·"
