"""RPL014 — phase-protocol ordering over the project call graph.

The paper's monitor contract is two-phase: the *maintain* phase
(``apply_update`` / ``apply_burst`` -> ``_apply`` / ``_apply_burst``)
mutates grid counters and scheme state; the *access* phase
(``refresh`` -> ``_refresh``, ``top_k``, ``sk``) reads it. Timing,
counter ownership, and the paper's correctness argument (access sees
the state as of the last maintained update) all assume the phases
never interleave — an access-phase helper that reaches a maintain
mutator bills maintain work to the access ledger and mutates state
readers assume frozen.

A per-file rule cannot see this: the crossing usually happens two
calls deep. This rule walks the project call graph from every
access-phase entry of every monitor class and flags the first
maintain-phase call on each path, at the call site (so a deliberate
crossing — the sharded monitor's refresh-time drain is one — gets a
reasoned suppression exactly where the design decision lives).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.callgraph import CallGraph, FunctionSummary
from repro.lint.registry import Violation, rule

#: access-phase entry points on monitor classes.
ACCESS_ENTRIES = frozenset({"_refresh", "top_k", "sk", "partial_top_k"})

#: maintain-phase mutators; calling one *from* the access phase is the
#: violation. Functions with these names are themselves skipped — once
#: inside the maintain phase, maintain calls are the contract.
MAINTAIN_SINKS = frozenset(
    {"_apply", "_apply_burst", "apply_update", "apply_burst"}
)

#: the monitor-layer modules the access-phase walk stays inside.
#: Observability (RPL010 polices that boundary), persistence, and the
#: bench/sim harnesses are separate layers — name-based resolution
#: through them drags driver code into the access set.
WALK_SCOPES = (
    "repro.core",
    "repro.shard",
    "repro.ext",
    "repro.index",
    "repro.grid",
    "repro.storage",
)


@rule(
    "RPL014",
    "phase-protocol",
    "no access-phase helper (reachable from _refresh/top_k/sk) may call "
    "a maintain-phase mutator (apply_update/_apply/...)",
    version=1,
    project_dependent=True,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro"):
        return
    monitor_family = _monitor_family(project)
    if not monitor_family:
        return
    graph = project.callgraph
    entries = [
        summary
        for summary in graph
        if summary.name in ACCESS_ENTRIES
        and summary.class_name in monitor_family
    ]
    if not entries:
        return
    origin = _access_reachable(graph, entries)
    for summary in project.functions:
        if summary.path != source.path:
            continue
        if summary.key not in origin:
            continue
        if summary.name in MAINTAIN_SINKS:
            continue  # already on the maintain side; its calls are fine
        entry_key = origin[summary.key]
        reported: set[tuple[int, str]] = set()
        for site in summary.calls:
            if site.callee not in MAINTAIN_SINKS:
                continue
            marker = (site.line, site.callee)
            if marker in reported:
                continue
            reported.add(marker)
            receiver = f"{site.receiver}." if site.receiver else ""
            yield Violation(
                code="RPL014",
                message=(
                    f"maintain-phase mutator '{receiver}{site.callee}()' "
                    f"called from '{summary.qualname}', which is "
                    "reachable from access-phase entry "
                    f"'{entry_key[1]}' — the access phase must not "
                    "mutate monitor state (two-phase contract); move "
                    "the work into the maintain phase, or suppress "
                    "with the design reason if the crossing is the "
                    "scheme's documented behaviour"
                ),
                path=source.path,
                line=site.line,
                col=site.col,
            )


def _access_reachable(
    graph: "CallGraph", entries: list["FunctionSummary"]
) -> dict[tuple[str, str], tuple[str, str]]:
    """Reachability that stops at maintain sinks.

    Unlike :meth:`CallGraph.reachable_from`, the walk does not expand
    *through* a function named like a maintain mutator: entering it is
    the violation (flagged at the call site), and everything past it is
    the maintain phase running under its own contract — following it
    would drag the whole maintain implementation (and whatever the obs
    hooks over-approximately resolve to) into the access-phase set.
    """
    origin: dict[tuple[str, str], tuple[str, str]] = {}
    queue: deque[FunctionSummary] = deque()
    for entry in entries:
        if entry.key not in origin:
            origin[entry.key] = entry.key
            queue.append(entry)
    while queue:
        current = queue.popleft()
        for site in current.calls:
            for target in graph.resolve(current, site):
                if (
                    target.key in origin
                    or target.name in MAINTAIN_SINKS
                    or not _in_walk_scope(target.module)
                ):
                    continue
                origin[target.key] = origin[current.key]
                queue.append(target)
    return origin


def _in_walk_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".")
        for scope in WALK_SCOPES
    )


def _monitor_family(project: ProjectIndex) -> frozenset[str]:
    """CTUPMonitor and every known subclass."""
    names = {
        info.name
        for info in project.monitor_classes()
    }
    if "CTUPMonitor" in project.classes:
        names.add("CTUPMonitor")
    return frozenset(names)
