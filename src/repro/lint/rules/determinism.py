"""RPL003 — determinism of the monitoring update paths.

The equivalence suite proves batched == per-update == sharded results,
and the ``GlobalTopK`` floor/refill merge is only provable because a
shard's partial order is reproducible. That all dies the moment an
update path consults wall-clock time, a random source, or iterates an
unordered set whose order leaks into results. Inside ``repro.core``,
``repro.shard``, ``repro.index`` and ``repro.grid`` this rule flags:

* ``random`` / ``numpy.random`` usage (workload *generation* is seeded
  and lives in ``repro.workloads`` / ``repro.roadnet``, out of scope);
* wall-clock reads (``time.time``, ``datetime.now``) — the base monitor
  owns all timing via ``time.perf_counter``, and timings never feed
  results;
* direct iteration over sets (literals, ``set()``/``frozenset()``
  calls, set comprehensions, names or ``self`` attributes annotated as
  sets, and set values pulled out of ``dict[..., set[...]]``
  attributes). Order ties must go through the documented
  ``(safety, id)`` sort key — iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

SCOPES = ("repro.core", "repro.shard", "repro.index", "repro.grid")

_SET_ROOTS = frozenset({"set", "frozenset", "Set", "MutableSet", "FrozenSet"})
_DICT_ROOTS = frozenset({"dict", "Dict", "defaultdict", "DefaultDict"})
_WALLCLOCK_TIME = frozenset({"time", "time_ns"})
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
_DICT_VALUE_PULLS = frozenset({"get", "pop", "setdefault"})


@rule(
    "RPL003",
    "determinism",
    "no random/wall-clock/unordered-set iteration in the core, shard, "
    "index or grid update paths; ties go through the (safety, id) key",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    set_names, set_attrs, dict_of_set_names, dict_of_set_attrs = _collect_set_types(
        source.tree
    )
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield from _check_import(source, node)
        elif isinstance(node, ast.Attribute):
            yield from _check_np_random(source, node)
        elif isinstance(node, ast.Call):
            yield from _check_wallclock(source, node)
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            if _is_set_expression(
                expr, set_names, set_attrs, dict_of_set_names, dict_of_set_attrs
            ):
                yield Violation(
                    code="RPL003",
                    message=(
                        "iteration over an unordered set in a monitoring "
                        "update path — set order is not reproducible across "
                        "processes; iterate sorted(...) (ties via the "
                        "documented (safety, id) key) or a list"
                    ),
                    path=source.path,
                    line=expr.lineno,
                    col=expr.col_offset,
                )


def _check_import(
    source: SourceFile, node: ast.Import | ast.ImportFrom
) -> Iterator[Violation]:
    modules = (
        [alias.name for alias in node.names]
        if isinstance(node, ast.Import)
        else [node.module or ""]
    )
    for module in modules:
        root = module.split(".", 1)[0]
        if root == "random" or module.startswith("numpy.random"):
            yield Violation(
                code="RPL003",
                message=(
                    f"import of '{module}' in a monitoring update path — "
                    "randomness belongs in the (seeded) workload layer, "
                    "never in result-bearing code"
                ),
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
            )


def _check_np_random(
    source: SourceFile, node: ast.Attribute
) -> Iterator[Violation]:
    if node.attr != "random":
        return
    if isinstance(node.value, ast.Name) and node.value.id in ("np", "numpy"):
        yield Violation(
            code="RPL003",
            message=(
                "numpy.random used in a monitoring update path — "
                "randomness belongs in the (seeded) workload layer"
            ),
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
        )


def _check_wallclock(source: SourceFile, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    receiver = func.value
    if (
        func.attr in _WALLCLOCK_TIME
        and isinstance(receiver, ast.Name)
        and receiver.id == "time"
    ) or (
        func.attr in _WALLCLOCK_DATETIME
        and (
            (isinstance(receiver, ast.Name) and receiver.id == "datetime")
            or (isinstance(receiver, ast.Attribute) and receiver.attr == "datetime")
        )
    ):
        yield Violation(
            code="RPL003",
            message=(
                f"wall-clock read '{ast.unparse(func)}' in a monitoring "
                "update path — the base monitor owns all timing "
                "(time.perf_counter), and clock values must never feed "
                "results"
            ),
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
        )


# -- set-type inference --------------------------------------------------


def _annotation_root(annotation: ast.expr) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        return _annotation_root(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            return _annotation_root(ast.parse(annotation.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


def _dict_value_is_set(annotation: ast.expr) -> bool:
    if not isinstance(annotation, ast.Subscript):
        return False
    if _annotation_root(annotation.value) not in _DICT_ROOTS:
        return False
    inner = annotation.slice
    if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
        return _annotation_root(inner.elts[1]) in _SET_ROOTS
    return False


def _collect_set_types(
    tree: ast.AST,
) -> tuple[set[str], set[str], set[str], set[str]]:
    """Names / ``self`` attributes known to hold sets or dicts-of-sets."""
    set_names: set[str] = set()
    set_attrs: set[str] = set()
    dict_of_set_names: set[str] = set()
    dict_of_set_attrs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ):
                if arg.annotation is None:
                    continue
                if _annotation_root(arg.annotation) in _SET_ROOTS:
                    set_names.add(arg.arg)
                elif _dict_value_is_set(arg.annotation):
                    dict_of_set_names.add(arg.arg)
        elif isinstance(node, ast.AnnAssign):
            root = _annotation_root(node.annotation)
            target = node.target
            if isinstance(target, ast.Name):
                if root in _SET_ROOTS:
                    set_names.add(target.id)
                elif _dict_value_is_set(node.annotation):
                    dict_of_set_names.add(target.id)
            elif isinstance(target, ast.Attribute) and _is_self(target.value):
                if root in _SET_ROOTS:
                    set_attrs.add(target.attr)
                elif _dict_value_is_set(node.annotation):
                    dict_of_set_attrs.add(target.attr)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            if _is_plain_set_expression(node.value):
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    set_names.add(target.id)
                elif isinstance(target, ast.Attribute) and _is_self(target.value):
                    set_attrs.add(target.attr)
    return set_names, set_attrs, dict_of_set_names, dict_of_set_attrs


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _is_plain_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_expression(
    node: ast.expr,
    set_names: set[str],
    set_attrs: set[str],
    dict_of_set_names: set[str],
    dict_of_set_attrs: set[str],
) -> bool:
    if _is_plain_set_expression(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node.attr in set_attrs
    if isinstance(node, ast.Subscript):
        return _is_dict_of_set(node.value, dict_of_set_names, dict_of_set_attrs)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        if node.func.attr in _DICT_VALUE_PULLS:
            return _is_dict_of_set(
                receiver, dict_of_set_names, dict_of_set_attrs
            )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_set_expression(
            node.left, set_names, set_attrs, dict_of_set_names, dict_of_set_attrs
        ) or _is_set_expression(
            node.right, set_names, set_attrs, dict_of_set_names, dict_of_set_attrs
        )
    return False


def _is_dict_of_set(
    node: ast.expr, dict_of_set_names: set[str], dict_of_set_attrs: set[str]
) -> bool:
    if isinstance(node, ast.Name):
        return node.id in dict_of_set_names
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node.attr in dict_of_set_attrs
    return False
