"""Fig. 8 — the effect of the Decrease Once Optimization.

Paper shape: OptCTUP with DOO beats OptCTUP without DOO, and the gap
matters more as the number of places grows. The machine-independent
signature is the cell-access rate: without DOO, bounds decay faster and
cells are re-accessed more often.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig8_doo_effect(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig8").run, rounds=1, iterations=1
    )
    record_result(result)
    doo_cells = column(result, "DOO cells/upd")
    nodoo_cells = column(result, "no-DOO cells/upd")
    # disabling DOO must raise the access rate at every place count.
    for p, with_doo, without in zip(
        column(result, "|P|"), doo_cells, nodoo_cells
    ):
        assert with_doo < without, f"DOO should reduce cell accesses at |P|={p}"
    # and the wall-clock advantage holds for the larger workloads where
    # access cost dominates.
    # Wall clock is noisier than the access counters; require the
    # advantage to materialise somewhere in the sweep without demanding
    # it at every point.
    ratio = column(result, "no-DOO/DOO")
    assert max(ratio) > 1.05
