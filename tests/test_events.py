"""Result-change tracking."""

import pytest

from repro.core import ChangeTracker, OptCTUP
from repro.validate import Oracle


@pytest.fixture
def tracker(small_config, small_places, small_units):
    tracker = ChangeTracker(OptCTUP(small_config, small_places, small_units))
    tracker.initialize()
    return tracker


class TestChangeTracker:
    def test_no_change_returns_none_or_change(self, tracker, small_stream):
        outcomes = [tracker.process(u) for u in small_stream.prefix(50)]
        # most updates do not move the result.
        assert any(c is None for c in outcomes)

    def test_changes_reflect_truth(
        self, tracker, small_oracle, small_stream, small_config
    ):
        last_ids = {r.place_id for r in tracker.monitor.top_k()}
        for update in small_stream:
            small_oracle.apply(update)
            change = tracker.process(update)
            ids = {r.place_id for r in tracker.monitor.top_k()}
            if change is not None:
                entered = {r.place_id for r in change.entered}
                left = {r.place_id for r in change.left}
                assert entered == ids - last_ids
                assert left == last_ids - ids
            else:
                assert ids == last_ids
            last_ids = ids

    def test_subscribers_invoked(self, tracker, small_stream):
        seen = []
        tracker.subscribe(seen.append)
        for update in small_stream:
            tracker.process(update)
        assert len(seen) == tracker.changes_seen
        assert seen, "a 150-update stream should move the result at least once"

    def test_sk_changed_flag(self, tracker, small_stream):
        for update in small_stream:
            change = tracker.process(update)
            if change is not None and change.sk_before != change.sk_after:
                assert change.sk_changed
                return
        pytest.skip("stream never moved SK")

    def test_entered_and_left_sorted(self, tracker, small_stream):
        for update in small_stream:
            change = tracker.process(update)
            if change is not None and len(change.entered) > 1:
                ids = [r.place_id for r in change.entered]
                assert ids == sorted(ids)
