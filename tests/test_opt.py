"""OptCTUP-specific behaviour and invariants (§IV)."""

import math

import pytest

from repro.core import BasicCTUP, OptCTUP
from repro.engine import MonitorSession
from repro.validate import Oracle
from tests.conftest import assert_valid_topk


@pytest.fixture
def opt(small_config, small_places, small_units):
    monitor = OptCTUP(small_config, small_places, small_units)
    monitor.initialize()
    return monitor


def audit_invariants(monitor: OptCTUP, oracle: Oracle) -> None:
    """The §IV invariants, checked against brute-force ground truth."""
    truth = oracle.safeties()
    grid = monitor.grid
    maintained = monitor.maintained.safeties_snapshot()
    # 1. maintained safeties are exact.
    for pid, safety in maintained.items():
        assert truth[pid] == safety, pid
    # 2. each cell bound covers its NON-maintained places only.
    per_cell_min: dict = {}
    for place in monitor.store.iter_all_places():
        if place.place_id in maintained:
            continue
        cell = grid.cell_of(place.location)
        value = truth[place.place_id]
        per_cell_min[cell] = min(per_cell_min.get(cell, math.inf), value)
    for cell, state in monitor.cell_states.items():
        assert state.lower_bound <= per_cell_min.get(cell, math.inf) + 1e-9
    # 3. every place strictly below SK is maintained.
    sk = oracle.sk(monitor.config.k)
    for pid, value in truth.items():
        if value < sk:
            assert pid in maintained, (pid, value, sk)


class TestInitialization:
    def test_initial_result_valid(self, opt, small_oracle, small_config):
        assert_valid_topk(small_oracle, opt, small_config.k)

    def test_initial_invariants(self, opt, small_oracle):
        audit_invariants(opt, small_oracle)

    def test_dechash_starts_empty(self, opt):
        assert len(opt.dechash) == 0

    def test_maintains_fewer_places_than_basic(
        self, small_config, small_places, small_units
    ):
        """Drawback 2: OptCTUP's maintained set is smaller."""
        basic = BasicCTUP(small_config, small_places, small_units)
        basic.initialize()
        opt = OptCTUP(small_config, small_places, small_units)
        opt.initialize()
        assert len(opt.maintained) <= len(basic.maintained)


class TestUpdateInvariants:
    def test_invariants_hold_along_stream(self, opt, small_oracle, small_stream):
        for i, update in enumerate(small_stream.prefix(60)):
            small_oracle.apply(update)
            opt.process(update)
            assert_valid_topk(small_oracle, opt, opt.config.k)
            if i % 20 == 19:
                audit_invariants(opt, small_oracle)

    def test_doo_suppresses_decreases(
        self, small_config, small_places, small_units, small_stream
    ):
        """The same stream causes fewer bound decrements with DOO on."""
        with_doo = OptCTUP(small_config, small_places, small_units)
        with_doo.initialize()
        without = OptCTUP(
            small_config.replace(use_doo=False), small_places, small_units
        )
        without.initialize()
        for update in small_stream:
            with_doo.process(update)
            without.process(update)
        assert (
            with_doo.counters.lb_decrements <= without.counters.lb_decrements
        )
        assert with_doo.counters.doo_suppressed >= 0

    def test_dechash_pairs_cleared_on_access(self, opt, small_stream):
        """After an access, the accessed cell holds no DecHash pairs."""
        for update in small_stream.prefix(80):
            report = opt.process(update)
            if report.cells_accessed:
                # every cell whose bound now sits at/above SK +
                # delta-ish was just refreshed; spot-check: no cell
                # with pairs has an inconsistent bound.
                for cell in opt.cell_states:
                    pairs = opt.dechash.pairs_of_cell(cell)
                    assert all(isinstance(u, int) for u in pairs)

    def test_delta_zero_still_valid(
        self, small_places, small_units, small_stream, small_config
    ):
        config = small_config.replace(delta=0)
        monitor = OptCTUP(config, small_places, small_units)
        monitor.initialize()
        oracle = Oracle(small_places, small_units)
        for update in small_stream.prefix(80):
            oracle.apply(update)
            monitor.process(update)
            assert_valid_topk(oracle, monitor, config.k)

    def test_larger_delta_fewer_accesses(
        self, small_places, small_units, small_stream, small_config
    ):
        accesses = {}
        for delta in (0, 8):
            monitor = OptCTUP(
                small_config.replace(delta=delta), small_places, small_units
            )
            monitor.initialize()
            base = monitor.counters.cells_accessed
            MonitorSession(monitor, track_changes=False).run(small_stream)
            accesses[delta] = monitor.counters.cells_accessed - base
        assert accesses[8] <= accesses[0]

    def test_larger_delta_more_maintained(
        self, small_places, small_units, small_stream, small_config
    ):
        peaks = {}
        for delta in (0, 8):
            monitor = OptCTUP(
                small_config.replace(delta=delta), small_places, small_units
            )
            monitor.initialize()
            MonitorSession(monitor, track_changes=False).run(small_stream)
            peaks[delta] = monitor.counters.maintained_peak
        assert peaks[8] >= peaks[0]
