"""Quickstart: monitor the top-k unsafe places of a small city.

Builds a city of 5 000 places protected by 60 patrol cars moving along
a road network, runs the OptCTUP monitor over a thousand location
updates, and prints the continuously maintained answer plus the
monitor's own cost counters.

Run:  python examples/quickstart.py
"""

from repro import CTUPConfig, open_session
from repro.bench.reporting import format_table
from repro.roadnet import NetworkMobility, grid_network
from repro.workloads import generate_places, record_stream


def main() -> None:
    config = CTUPConfig(k=10, delta=4, protection_range=0.1, granularity=10)

    # the city: places with skewed protection requirements, and a fleet
    # patrolling a perturbed Manhattan road network.
    places = generate_places(5_000, seed=42)
    network = grid_network(rows=12, cols=12, seed=7)
    mobility = NetworkMobility(
        network, count=60, speed=0.005, report_distance=0.005, seed=3
    )
    units = mobility.initial_units(config.protection_range)

    session = open_session("opt", places=places, units=units, config=config)
    report = session.start()
    monitor = session.monitor
    print(
        f"initialized in {report.seconds * 1e3:.1f} ms "
        f"(SK = {report.sk:+.0f}, {report.maintained_places} places maintained "
        f"of {len(places)})\n"
    )

    stream = record_stream(mobility, 1_000)
    session.run(stream)

    print(
        format_table(
            ["rank", "place", "kind", "required", "safety"],
            [
                [
                    rank + 1,
                    record.place_id,
                    record.place.kind,
                    record.place.required_protection,
                    record.safety,
                ]
                for rank, record in enumerate(monitor.top_k())
            ],
            title=f"top-{config.k} unsafe places after {len(stream)} updates",
        )
    )

    counters = monitor.counters
    print(
        f"\nper update: "
        f"{counters.total_update_time_s() / len(stream) * 1e3:.3f} ms, "
        f"{counters.cells_accessed / len(stream):.2f} cell accesses, "
        f"{len(monitor.maintained)} places maintained "
        f"({len(monitor.maintained) / len(places):.1%} of the city)"
    )


if __name__ == "__main__":
    main()
