"""Naïve and incremental baselines."""

import pytest

from repro.core import NaiveCTUP
from repro.engine import MonitorSession
from repro.core.incremental import IncrementalNaiveCTUP
from tests.conftest import assert_valid_topk


class TestNaive:
    @pytest.fixture
    def naive(self, small_config, small_places, small_units):
        monitor = NaiveCTUP(small_config, small_places, small_units)
        monitor.initialize()
        return monitor

    def test_initial_result_valid(self, naive, small_oracle, small_config):
        assert_valid_topk(small_oracle, naive, small_config.k)

    def test_full_scan_every_update(self, naive, small_stream):
        cells = len(naive.store.occupied_cells())
        base = naive.counters.cells_accessed
        MonitorSession(naive, track_changes=False).run(small_stream.prefix(10))
        assert naive.counters.cells_accessed - base == 10 * cells

    def test_results_track_oracle(self, naive, small_oracle, small_stream):
        for update in small_stream.prefix(40):
            small_oracle.apply(update)
            naive.process(update)
            assert_valid_topk(small_oracle, naive, naive.config.k)

    def test_place_lookup_matches_ids(self, naive):
        for record in naive.top_k():
            assert record.place.place_id == record.place_id

    def test_update_report_fields(self, naive, small_stream):
        report = naive.process(small_stream[0])
        assert report.unit_id == small_stream[0].unit_id
        assert report.cells_accessed > 0


class TestIncremental:
    @pytest.fixture
    def incremental(self, small_config, small_places, small_units):
        monitor = IncrementalNaiveCTUP(small_config, small_places, small_units)
        monitor.initialize()
        return monitor

    def test_results_track_oracle(
        self, incremental, small_oracle, small_stream
    ):
        for update in small_stream.prefix(40):
            small_oracle.apply(update)
            incremental.process(update)
            assert_valid_topk(small_oracle, incremental, incremental.config.k)

    def test_scans_all_places_every_update(
        self, incremental, small_places, small_stream
    ):
        base = incremental.counters.maintained_scans
        MonitorSession(incremental, track_changes=False).run(small_stream.prefix(5))
        assert incremental.counters.maintained_scans - base == 5 * len(
            small_places
        )

    def test_does_less_distance_work_than_naive(
        self, small_config, small_places, small_units, small_stream
    ):
        naive = NaiveCTUP(small_config, small_places, small_units)
        naive.initialize()
        inc = IncrementalNaiveCTUP(small_config, small_places, small_units)
        inc.initialize()
        n0, i0 = (
            naive.counters.distance_rows,
            inc.counters.distance_rows,
        )
        for update in small_stream.prefix(20):
            naive.process(update)
            inc.process(update)
        assert (
            inc.counters.distance_rows - i0
            < naive.counters.distance_rows - n0
        )
