"""Checkpoint / restore of OptCTUP state."""

import json

import pytest

from repro.core import OptCTUP
from repro.persist import CheckpointError, restore_optctup, snapshot_optctup
from repro.workloads import generate_places
from tests.conftest import assert_valid_topk


@pytest.fixture
def running_monitor(small_config, small_places, small_units, small_stream):
    monitor = OptCTUP(small_config, small_places, small_units)
    monitor.initialize()
    for update in small_stream.prefix(60):
        monitor.process(update)
    return monitor


class TestSnapshot:
    def test_uninitialized_rejected(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        with pytest.raises(CheckpointError):
            snapshot_optctup(monitor)

    def test_snapshot_is_json(self, running_monitor):
        data = json.loads(snapshot_optctup(running_monitor))
        assert data["format"] == 2
        assert data["scheme"] == "opt"
        assert data["state"]["units"]
        assert data["state"]["scheme_state"]["cell_states"]


class TestRestore:
    def test_roundtrip_preserves_result(
        self, running_monitor, small_places
    ):
        document = snapshot_optctup(running_monitor)
        restored = restore_optctup(document, small_places)
        assert restored.topk_ids() == running_monitor.topk_ids()
        assert restored.sk() == running_monitor.sk()
        assert len(restored.maintained) == len(running_monitor.maintained)

    def test_restored_monitor_continues_correctly(
        self,
        running_monitor,
        small_places,
        small_units,
        small_stream,
        small_oracle,
    ):
        document = snapshot_optctup(running_monitor)
        restored = restore_optctup(document, small_places)
        # the oracle must first catch up with the pre-checkpoint stream.
        for update in small_stream.prefix(60):
            small_oracle.apply(update)
        for update in small_stream.updates[60:]:
            small_oracle.apply(update)
            running_monitor.process(update)
            restored.process(update)
            assert_valid_topk(small_oracle, restored, restored.config.k)
            assert restored.sk() == running_monitor.sk()

    def test_restore_against_wrong_places_rejected(self, running_monitor):
        document = snapshot_optctup(running_monitor)
        other_places = generate_places(600, seed=999)
        with pytest.raises(CheckpointError):
            restore_optctup(document, other_places)

    def test_restore_garbage_rejected(self, small_places):
        with pytest.raises(CheckpointError):
            restore_optctup("not json {", small_places)

    def test_restore_wrong_version_rejected(
        self, running_monitor, small_places
    ):
        data = json.loads(snapshot_optctup(running_monitor))
        data["format"] = 99
        with pytest.raises(CheckpointError):
            restore_optctup(json.dumps(data), small_places)

    def test_restore_skips_initialization(
        self, running_monitor, small_places
    ):
        document = snapshot_optctup(running_monitor)
        restored = restore_optctup(document, small_places)
        # initialize() must refuse (the state is already live).
        with pytest.raises(RuntimeError):
            restored.initialize()

    def test_config_survives(self, running_monitor, small_places):
        document = snapshot_optctup(running_monitor)
        restored = restore_optctup(document, small_places)
        assert restored.config.k == running_monitor.config.k
        assert restored.config.delta == running_monitor.config.delta
        assert restored.config.use_doo == running_monitor.config.use_doo
