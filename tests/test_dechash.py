"""Unit tests for DecHash."""

from repro.core.dechash import DecHash


class TestBasics:
    def test_empty(self):
        h = DecHash()
        assert len(h) == 0
        assert not h.contains(1, (0, 0))

    def test_insert_and_contains(self):
        h = DecHash()
        assert h.insert(1, (2, 3))
        assert h.contains(1, (2, 3))
        assert (1, (2, 3)) in h
        assert len(h) == 1

    def test_insert_duplicate_returns_false(self):
        h = DecHash()
        h.insert(1, (0, 0))
        assert not h.insert(1, (0, 0))
        assert len(h) == 1

    def test_same_unit_different_cells(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(1, (0, 1))
        assert len(h) == 2

    def test_same_cell_different_units(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(2, (0, 0))
        assert len(h) == 2


class TestRemove:
    def test_remove_present(self):
        h = DecHash()
        h.insert(1, (0, 0))
        assert h.remove(1, (0, 0))
        assert len(h) == 0
        assert not h.contains(1, (0, 0))

    def test_remove_absent_is_noop(self):
        h = DecHash()
        assert not h.remove(1, (0, 0))
        assert len(h) == 0

    def test_remove_keeps_other_units(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(2, (0, 0))
        h.remove(1, (0, 0))
        assert h.contains(2, (0, 0))

    def test_reinsert_after_remove(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.remove(1, (0, 0))
        assert h.insert(1, (0, 0))


class TestClearCell:
    def test_clear_cell_drops_all_pairs(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(2, (0, 0))
        h.insert(1, (5, 5))
        assert h.clear_cell((0, 0)) == 2
        assert len(h) == 1
        assert h.contains(1, (5, 5))

    def test_clear_empty_cell(self):
        h = DecHash()
        assert h.clear_cell((9, 9)) == 0

    def test_pairs_of_cell(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(3, (0, 0))
        assert h.pairs_of_cell((0, 0)) == {1, 3}
        assert h.pairs_of_cell((1, 1)) == set()

    def test_clear_all(self):
        h = DecHash()
        h.insert(1, (0, 0))
        h.insert(2, (1, 1))
        h.clear()
        assert len(h) == 0
