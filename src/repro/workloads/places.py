"""Place-set generation.

The paper's introduction motivates skewed protection requirements: most
places (residences) need one nearby unit, some (malls, transit stations)
need a few, and rare high-value targets (banks, embassies) need many.
The paper itself only says places are "randomly generated", so the
distribution is an explicit, documented knob here (see DESIGN.md §5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.model import Place

#: default requirement skew: (required protection, weight, label).
#:
#: The shape matters more than the exact numbers: the mass of places
#: needs little protection (and is comfortably safe under a patrolling
#: fleet), while rare high-value targets demand far more than the fleet
#: can routinely provide. That long sparse lower tail of safeties is
#: what the paper's own examples depict (Fig. 1: one place at -8 among
#: neighbours at -1..0) and what makes ``SK`` an extreme-value statistic
#: rather than a bulk quantile. With ~150 units of range 0.1 on the unit
#: square the actual protection averages about 4.7, so residences sit
#: around +4 while embassies sit around -11.
_DEFAULT_TIERS: tuple[tuple[int, float, str], ...] = (
    (0, 0.20, "park"),
    (1, 0.55, "residence"),
    (2, 0.12, "shop"),
    (3, 0.06, "school"),
    (5, 0.035, "mall"),
    (7, 0.02, "station"),
    (9, 0.01, "office-tower"),
    (12, 0.004, "bank"),
    (16, 0.001, "embassy"),
)


@dataclass(frozen=True)
class RequiredProtectionModel:
    """A discrete distribution over required-protection values."""

    tiers: tuple[tuple[int, float, str], ...] = _DEFAULT_TIERS

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("at least one tier is required")
        if any(weight <= 0 for _, weight, _ in self.tiers):
            raise ValueError("tier weights must be positive")
        if any(rp < 0 for rp, _, _ in self.tiers):
            raise ValueError("required protections must be >= 0")

    @classmethod
    def constant(cls, required: int, label: str = "place") -> "RequiredProtectionModel":
        """Every place requires the same protection."""
        return cls(tiers=((required, 1.0, label),))

    @classmethod
    def uniform(cls, low: int, high: int) -> "RequiredProtectionModel":
        """Required protections uniform over ``low..high`` inclusive."""
        if low > high:
            raise ValueError("low must not exceed high")
        return cls(
            tiers=tuple((rp, 1.0, f"tier-{rp}") for rp in range(low, high + 1))
        )

    def sample(self, rng: random.Random) -> tuple[int, str]:
        """Draw one (required protection, label) pair."""
        weights = [weight for _, weight, _ in self.tiers]
        rp, _, label = rng.choices(self.tiers, weights=weights, k=1)[0]
        return rp, label


def uniform_points(n: int, rng: random.Random, space: Rect) -> list[Point]:
    """``n`` points uniform over ``space``."""
    return [
        Point(
            rng.uniform(space.xmin, space.xmax),
            rng.uniform(space.ymin, space.ymax),
        )
        for _ in range(n)
    ]


def clustered_points(
    n: int,
    rng: random.Random,
    space: Rect,
    clusters: int = 8,
    spread: float = 0.05,
) -> list[Point]:
    """``n`` points around ``clusters`` gaussian hot spots.

    Models a downtown-heavy city; points falling outside the space are
    clamped to it so every place stays monitorable.
    """
    if clusters <= 0:
        raise ValueError("need at least one cluster")
    centers = uniform_points(clusters, rng, space)
    points = []
    for _ in range(n):
        center = rng.choice(centers)
        p = Point(
            rng.gauss(center.x, spread * space.width),
            rng.gauss(center.y, spread * space.height),
        )
        points.append(space.clamp_point(p))
    return points


def generate_extent_places(
    n: int,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    max_half_extent: float = 0.01,
    protection_model: RequiredProtectionModel | None = None,
):
    """Places with rectangular extent (for the §VII extent extension).

    Each place is a rectangle around a uniform anchor with half-extents
    drawn up to ``max_half_extent``, clamped into the space. Returns
    :class:`repro.ext.extent.ExtentPlace` records.
    """
    from repro.ext.extent import ExtentPlace

    if n < 0:
        raise ValueError("n must be >= 0")
    if max_half_extent < 0:
        raise ValueError("max_half_extent cannot be negative")
    rng = random.Random(seed)
    model = protection_model or RequiredProtectionModel()
    places = []
    for i in range(n):
        cx = rng.uniform(space.xmin, space.xmax)
        cy = rng.uniform(space.ymin, space.ymax)
        half_w = rng.uniform(0.0, max_half_extent)
        half_h = rng.uniform(0.0, max_half_extent)
        rp, label = model.sample(rng)
        places.append(
            ExtentPlace(
                place_id=i,
                extent=Rect(
                    max(space.xmin, cx - half_w),
                    max(space.ymin, cy - half_h),
                    min(space.xmax, cx + half_w),
                    min(space.ymax, cy + half_h),
                ),
                required_protection=rp,
                kind=label,
            )
        )
    return places


def generate_places(
    n: int,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    placement: str = "uniform",
    protection_model: RequiredProtectionModel | None = None,
    id_offset: int = 0,
) -> list[Place]:
    """Generate a reproducible place set.

    Parameters mirror Table III's knobs: ``n`` is ``|P|``; ``placement``
    is ``"uniform"`` (the paper's setting) or ``"clustered"``.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = random.Random(seed)
    model = protection_model or RequiredProtectionModel()
    if placement == "uniform":
        points = uniform_points(n, rng, space)
    elif placement == "clustered":
        points = clustered_points(n, rng, space)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    places = []
    for i, point in enumerate(points):
        rp, label = model.sample(rng)
        places.append(
            Place(
                place_id=id_offset + i,
                location=point,
                required_protection=rp,
                kind=label,
            )
        )
    return places
