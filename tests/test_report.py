"""The markdown report generator and its CLI command."""

import pytest

from repro.bench.report import generate_report
from repro.cli import main


class TestGenerateReport:
    def test_subset_report(self):
        text = generate_report(scale=0.04, experiment_ids=["table3", "fig3"])
        assert "# CTUP reproduction" in text
        assert "Table III" in text
        assert "Fig. 3" in text
        assert "Fig. 4" not in text
        assert "| algorithm |" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(experiment_ids=["fig99"])

    def test_notes_rendered_as_quotes(self):
        text = generate_report(scale=0.04, experiment_ids=["fig3"])
        assert "> expected shape" in text

    def test_environment_header(self):
        text = generate_report(scale=0.04, experiment_ids=["table3"])
        assert "Python" in text
        assert "seed 0" in text


class TestCliReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--out", "-", "--scale", "0.04", "--only", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "measured.md"
        assert (
            main(
                [
                    "report",
                    "--out",
                    str(target),
                    "--scale",
                    "0.04",
                    "--only",
                    "table3",
                ]
            )
            == 0
        )
        assert "Table III" in target.read_text()
        assert str(target) in capsys.readouterr().out
