"""Shared fixtures for the test suite.

The "small" workload family keeps unit tests fast (hundreds of places,
dozens of units, short streams) while the equivalence tests scale up via
their own parameters. Everything is seeded — a failing test replays
exactly.
"""

from __future__ import annotations

import pytest

from repro.core import CTUPConfig
from repro.model import Unit
from repro.validate import Oracle
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)


@pytest.fixture
def small_config() -> CTUPConfig:
    return CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=8)


@pytest.fixture
def small_places():
    return generate_places(600, seed=11)


@pytest.fixture
def small_units(small_config):
    return generate_units(30, small_config.protection_range, seed=12)


@pytest.fixture
def small_stream(small_units):
    mobility = RandomWalkMobility(small_units, step=0.03, seed=13)
    return record_stream(mobility, 150)


@pytest.fixture
def small_oracle(small_places, small_units):
    return Oracle(small_places, small_units)


def assert_valid_topk(oracle: Oracle, monitor, k: int) -> None:
    """Assert the monitor's current result is a valid top-k set."""
    verdict = oracle.validate(monitor.top_k(), k)
    assert verdict.ok, verdict.problems


@pytest.fixture
def unit_at():
    """Factory for units at explicit coordinates."""

    def build(unit_id: int, x: float, y: float, radius: float = 0.1) -> Unit:
        from repro.geometry import Point

        return Unit(unit_id=unit_id, location=Point(x, y), protection_range=radius)

    return build
