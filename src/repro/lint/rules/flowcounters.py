"""RPL013 — counter conservation along every CFG path.

RPL002 checks *who* may charge a counter; this rule checks *when*. The
once-per-call fields of ``MonitorCounters`` (the timing and stream
ledgers the bench/obs story reads) must be charged exactly once per
maintain/access call: a function that charges ``self.counters.<field>``
somewhere must charge it on **every** normal completion (an early
``return`` — or a handler return reached only on an exception edge —
that skips the charge under-reports the phase), and must never reach
the same charge twice (a charge inside a loop body double-bills the
call). Paths that propagate an exception are exempt: the caller never
got a result, so no charge is owed.

Receivers are matched through a ``counters`` attribute in the chain
(``self.counters.updates_processed``), which keeps ``MonitorCounters``'s
own methods (``restore``, ``__add__`` — plain ``self.<field>``) out of
scope; those are conversions, not charges.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.cfg import (
    CFG,
    NORMAL_EXIT_KINDS,
    Block,
    function_cfgs,
    scan_roots,
)
from repro.lint.flow.dataflow import BOTTOM, FlagLattice, FlagState, solve_forward
from repro.lint.registry import Violation, rule

SCOPES = ("repro.core", "repro.shard", "repro.ext")

#: fields charged exactly once per lifecycle call by contract
#: (``CTUPMonitor.apply_update`` / ``apply_burst`` / ``refresh`` /
#: ``initialize`` own them — see RPL002's ownership table).
ONCE_PER_CALL_FIELDS = frozenset(
    {
        "time_maintain_s",
        "time_access_s",
        "time_init_s",
        "updates_processed",
        "coalesced_updates",
        "maintained_peak",
    }
)

_ZERO = "0"
_ONE = "1"
_MANY = "2+"
_LATTICE = FlagLattice(default=_ZERO)


@rule(
    "RPL013",
    "counter-conservation",
    "once-per-call MonitorCounters charges happen on every normal exit "
    "path and never twice (early returns, except edges, loop bodies)",
    version=1,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    for node, cfg in function_cfgs(source.tree):
        yield from _check_function(source, cfg)


def _charged_fields(node: ast.AST) -> frozenset[str]:
    """Once-per-call fields a statement charges through ``.counters.``"""
    charged: set[str] = set()
    for root in scan_roots(node):
        for sub in ast.walk(root):
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            else:
                continue
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, ast.Tuple)
                    else [target]
                )
                for element in elements:
                    if (
                        isinstance(element, ast.Attribute)
                        and element.attr in ONCE_PER_CALL_FIELDS
                        and _through_counters(element.value)
                    ):
                        charged.add(element.attr)
    return frozenset(charged)


def _through_counters(node: ast.expr) -> bool:
    """Whether the receiver chain passes an attribute named
    ``counters`` (or is a bare ``counters`` variable)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == "counters":
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id == "counters"


def _check_function(source: SourceFile, cfg: CFG) -> Iterator[Violation]:
    fields: set[str] = set()
    for block in cfg.statement_blocks():
        if block.node is not None:
            fields.update(_charged_fields(block.node))
    for field in sorted(fields):
        yield from _check_field(source, cfg, field)


def _check_field(
    source: SourceFile, cfg: CFG, field: str
) -> Iterator[Violation]:
    def transfer(block: Block, state: FlagState) -> FlagState:
        if block.node is None or field not in _charged_fields(block.node):
            return state
        possible = _LATTICE.read(state, field)
        bumped = frozenset(
            _ONE if value == _ZERO else _MANY for value in possible
        )
        updated = dict(state)
        updated[field] = bumped
        return updated

    in_states = solve_forward(
        cfg, _LATTICE.initial([field]), transfer, _LATTICE.join
    )

    # double charge: a charge block whose in-state may already be >= 1.
    for block in cfg.statement_blocks():
        if block.node is None or field not in _charged_fields(block.node):
            continue
        state = in_states.get(block.block_id, BOTTOM)
        if state is BOTTOM or not isinstance(state, dict):
            continue
        already = _LATTICE.read(state, field) - frozenset({_ZERO})
        if already:
            yield Violation(
                code="RPL013",
                message=(
                    f"counter '{field}' may be charged more than once on "
                    "a path through this statement (a loop back-edge or "
                    "repeated charge reaches it already-charged) — "
                    "once-per-call fields double-bill the phase ledger; "
                    "hoist the charge out of the loop"
                ),
                path=source.path,
                line=block.line,
                col=getattr(block.node, "col_offset", 0),
            )

    # skipped charge: a normal completion whose carried state may be 0.
    reported_lines: set[int] = set()
    for edge in cfg.exit_edges():
        if edge.kind not in NORMAL_EXIT_KINDS:
            continue
        block = cfg.blocks[edge.src]
        state = in_states.get(edge.src, BOTTOM)
        if state is BOTTOM or not isinstance(state, dict):
            continue
        carried = transfer(block, state)
        if _ZERO not in _LATTICE.read(carried, field):
            continue
        line = block.line or cfg.line
        if line in reported_lines:
            continue
        reported_lines.add(line)
        yield Violation(
            code="RPL013",
            message=(
                f"a normal completion of '{cfg.name}' is reachable with "
                f"counter '{field}' uncharged (early return, or a "
                "handler completing after an exception edge skipped the "
                "charge) while other paths charge it — the phase ledger "
                "under-reports; charge in a finally or on every branch"
            ),
            path=source.path,
            line=line,
            col=0,
        )
