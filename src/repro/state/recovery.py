"""Checkpoint directories and crash recovery.

A checkpoint directory is owned WAL-style by one monitoring run::

    checkpoints/
      journal.jsonl            # the append-only update journal
      snapshot-000000000060.json   # snapshot at journal seq 60
      snapshot-000000000120.json   # newer snapshots accumulate

:class:`CheckpointStore` handles the layout (atomic snapshot writes via
temp-file rename); :class:`RecoveryManager` turns the directory back
into a live, bit-identically resumed session: restore the latest
snapshot, re-pin counters after the change tracker primes, replay the
journal tail through the ordinary session pipeline, continue.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.model import Place, Unit
from repro.state.snapshot import SnapshotError, restore_monitor

if TYPE_CHECKING:
    from repro.engine.session import MonitorSession
    from repro.obs.spec import Observability

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where a session writes snapshots.

    ``every_batches`` > 0 snapshots after every that many flush
    boundaries (a batch flush, or one update in single mode); 0 disables
    periodic snapshots. ``on_close`` writes a final snapshot when the
    session is closed. The journal is always written — it is what makes
    the *tail* after the last snapshot recoverable.
    """

    directory: str | Path
    every_batches: int = 0
    on_close: bool = True

    def __post_init__(self) -> None:
        if self.every_batches < 0:
            raise ValueError("every_batches cannot be negative")


class CheckpointStore:
    """Filesystem layout of one checkpoint directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    def snapshot_paths(self) -> list[Path]:
        """All snapshot files, oldest first (names sort by journal seq)."""
        return sorted(
            p
            for p in self.directory.glob(
                f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"
            )
            if p.is_file()
        )

    def write_snapshot(self, document: dict[str, Any]) -> Path:
        """Atomically persist a snapshot document (write temp, fsync,
        rename) — the rename alone is atomic but not durable; a crash
        right after it may expose an empty file to recovery."""
        seq = int(document.get("journal_seq", 0))
        path = self.directory / f"{_SNAPSHOT_PREFIX}{seq:012d}{_SNAPSHOT_SUFFIX}"
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(document))
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        return path

    def latest(self) -> dict[str, Any] | None:
        """The newest snapshot document, or ``None`` when there is none."""
        paths = self.snapshot_paths()
        if not paths:
            return None
        try:
            return json.loads(paths[-1].read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise SnapshotError(
                f"corrupt snapshot file {paths[-1].name}: {error}"
            ) from None

    def wipe(self) -> None:
        """Delete all snapshots and the journal (fresh-run ownership).

        A non-resuming run owns its checkpoint directory the way a
        database owns its WAL: stale state from an earlier run must not
        leak into the new journal's sequence numbering.
        """
        for path in self.snapshot_paths():
            path.unlink()
        if self.journal_path.exists():
            self.journal_path.unlink()


class RecoveryManager:
    """Resume a monitoring session from a checkpoint directory.

    The resume sequence (each step matters for bit-identity):

    1. restore the latest snapshot into a fresh monitor
       (:func:`restore_monitor` — structures, caches, counters);
    2. build the session with the same checkpoint policy and start it —
       starting primes the change tracker, and that priming read may
       touch storage and the merge layer;
    3. re-pin the counters (``restore_counter_state``) to erase the
       priming perturbation;
    4. adopt the session metadata (updates processed, journal position);
    5. replay the journal tail through the ordinary pipeline with
       journaling and checkpointing suppressed — tracker observation and
       audits still run, reproducing the uninterrupted run's reads;
    6. hand the session back, live.

    With no snapshot but a non-empty journal, the monitor initializes
    from scratch and the whole journal replays (steps 3–4 collapse: a
    fresh initialization needs no re-pinning). The resumed session must
    use the same ``batch_size`` as the journaled run — flush markers
    only line up at the same burst boundaries.
    """

    def __init__(
        self,
        policy: CheckpointPolicy,
        *,
        places: Sequence[Place],
        units: Iterable[Unit],
        factory: Callable | None = None,
        parallelism: int = 0,
    ) -> None:
        self.policy = policy
        self.store = CheckpointStore(policy.directory)
        self.places = places
        self.units = list(units)
        self.factory = factory
        self.parallelism = parallelism

    def latest_document(self) -> dict[str, Any] | None:
        """The newest snapshot document in the directory, if any."""
        return self.store.latest()

    def recover_monitor(self) -> Any | None:
        """Restore the latest snapshot into a monitor (no journal replay).

        Returns ``None`` when the directory holds no snapshot yet.
        """
        document = self.store.latest()
        if document is None:
            return None
        return self._restore(document)

    def resume_session(
        self,
        *,
        fresh_monitor: Callable[[], Any],
        batch_size: int = 0,
        audit_every: int = 0,
        hooks: Sequence = (),
        track_changes: bool = True,
        obs: "Observability | None" = None,
    ) -> "MonitorSession":
        """The full resume sequence; returns a *started* session.

        ``fresh_monitor`` builds the monitor for the no-snapshot-yet
        case (journal-only recovery, or a completely empty directory).
        ``obs`` is handed to the session, so the restore and the journal
        replay are traced and the recovered monitor comes out
        instrumented.
        """
        from repro.engine.session import MonitorSession

        document = self.store.latest()
        if document is None:
            monitor = fresh_monitor()
        elif obs is None:
            monitor = self._restore(document)
        else:
            with obs.tracer.span(
                "recovery.restore",
                cat="state",
                seq=int(document.get("journal_seq", 0)),
            ):
                monitor = self._restore(document)
        session = MonitorSession(
            monitor,
            batch_size=batch_size,
            audit_every=audit_every,
            hooks=hooks,
            track_changes=track_changes,
            checkpoint=self.policy,
            obs=obs,
        )
        session.start()
        if document is not None:
            # erase the tracker-priming perturbation (step 3).
            monitor.restore_counter_state(document["state"])
            meta = document.get("session", {})
            session.adopt_resume_state(
                updates_processed=int(meta.get("updates_processed", 0)),
                applied_seq=int(document.get("journal_seq", 0)),
            )
        journal = session.journal
        assert journal is not None  # the policy always opens one
        tail = journal.tail(session.applied_seq)
        if obs is None:
            session.replay(tail)
        else:
            with obs.tracer.span(
                "recovery.replay", cat="state", records=len(tail)
            ):
                session.replay(tail)
            obs.registry.counter(
                "ctup_recovery_replays_total",
                "Journal-tail replays performed on resume.",
            ).inc()
        return session

    def _restore(self, document: dict[str, Any]) -> Any:
        return restore_monitor(
            document,
            places=self._folded_places(int(document.get("journal_seq", 0))),
            units=self.units,
            factory=self.factory,
            parallelism=self.parallelism,
        )

    def _folded_places(self, journal_seq: int) -> Sequence[Place]:
        """The place set in force at ``journal_seq``.

        The snapshot's config already carries post-control ``k`` /
        granularity, and its exported plan the shard layout — but the
        *place catalog* reaches :func:`restore_monitor` as a plain list,
        typically the workload's original one. Any catalog mutations the
        journal records before the snapshot cut must be folded in first,
        or the rebuilt store (and its fingerprint) describes the wrong
        world.
        """
        if journal_seq <= 0 or not self.store.journal_path.exists():
            return self.places
        # local imports: repro.control sits above repro.state.
        from repro.control.events import decode_event
        from repro.control.replay import fold_places
        from repro.state.journal import UpdateJournal

        journal = UpdateJournal(self.store.journal_path)
        try:
            events = [
                decode_event(
                    {k: v for k, v in record.control.items() if k != "mode"}
                )
                for record in journal.records()
                if record.is_control and record.seq <= journal_seq
            ]
        finally:
            journal.close()
        if not events:
            return self.places
        return fold_places(self.places, events)
