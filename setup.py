"""Legacy shim: this environment has setuptools without the wheel
package, so editable installs need the pre-PEP-517 path."""

from setuptools import setup

setup()
