"""Named city scenarios.

A scenario bundles a coherent set of workload choices — road topology,
place placement, requirement skew, fleet behaviour — under one name, so
examples, tests and ad-hoc experiments can say ``build_scenario(
"downtown")`` instead of repeating six keyword arguments. Every scenario
is deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.model import Place, Unit
from repro.roadnet import (
    DirectedPatrolMobility,
    NetworkMobility,
    grid_network,
    radial_network,
    random_network,
)
from repro.workloads.places import RequiredProtectionModel, generate_places
from repro.workloads.stream import UpdateStream, record_stream


@dataclass(frozen=True)
class ScenarioWorld:
    """Everything a monitor run needs, plus the live mobility model."""

    name: str
    places: Sequence[Place]
    units: Sequence[Unit]
    stream: UpdateStream
    mobility: NetworkMobility

    def hotspots(self, min_required: int = 5) -> list[Place]:
        """The high-value places of this world."""
        return [
            p for p in self.places if p.required_protection >= min_required
        ]

    def control_plan(self, n_events: int = 4, seed: int = 0, **kwargs):
        """A deterministic reconfiguration schedule for this world
        (see :func:`repro.workloads.control.generate_control_plan`)."""
        from repro.workloads.control import generate_control_plan

        return generate_control_plan(
            self.places,
            stream_length=len(self.stream),
            n_events=n_events,
            seed=seed,
            **kwargs,
        )


@dataclass(frozen=True)
class Scenario:
    """A named, documented workload recipe."""

    name: str
    description: str
    builder: Callable[[int, int, int, float, int], ScenarioWorld]

    def build(
        self,
        seed: int = 0,
        n_places: int = 6_000,
        n_units: int = 60,
        protection_range: float = 0.1,
        stream_length: int = 1_000,
    ) -> ScenarioWorld:
        return self.builder(
            seed, n_places, n_units, protection_range, stream_length
        )


def _downtown(seed, n_places, n_units, protection_range, stream_length):
    """Dense clustered core on a Manhattan grid, uniform patrol."""
    places = generate_places(
        n_places, seed=seed, placement="clustered"
    )
    mobility = NetworkMobility(
        grid_network(rows=14, cols=14, seed=seed + 1),
        count=n_units,
        seed=seed + 2,
    )
    return ScenarioWorld(
        "downtown",
        places,
        mobility.initial_units(protection_range),
        record_stream(mobility, stream_length),
        mobility,
    )


def _old_town(seed, n_places, n_units, protection_range, stream_length):
    """Radial ring-and-spoke topology, clustered places."""
    places = generate_places(n_places, seed=seed, placement="clustered")
    mobility = NetworkMobility(
        radial_network(rings=5, spokes=14, seed=seed + 1),
        count=n_units,
        seed=seed + 2,
    )
    return ScenarioWorld(
        "old-town",
        places,
        mobility.initial_units(protection_range),
        record_stream(mobility, stream_length),
        mobility,
    )


def _suburbia(seed, n_places, n_units, protection_range, stream_length):
    """Sparse uniform sprawl, mild requirements, random roads."""
    mild = RequiredProtectionModel(
        tiers=(
            (0, 0.35, "park"),
            (1, 0.55, "residence"),
            (2, 0.08, "shop"),
            (4, 0.02, "school"),
        )
    )
    places = generate_places(n_places, seed=seed, protection_model=mild)
    mobility = NetworkMobility(
        random_network(nodes=150, seed=seed + 1),
        count=n_units,
        seed=seed + 2,
    )
    return ScenarioWorld(
        "suburbia",
        places,
        mobility.initial_units(protection_range),
        record_stream(mobility, stream_length),
        mobility,
    )


def _directed_patrol(seed, n_places, n_units, protection_range, stream_length):
    """Uniform city, but the fleet patrols towards high-value places."""
    places = generate_places(n_places, seed=seed)
    hotspots = [p for p in places if p.required_protection >= 5]
    mobility = DirectedPatrolMobility(
        grid_network(rows=12, cols=12, seed=seed + 1),
        count=n_units,
        hotspots=hotspots,
        bias=0.6,
        seed=seed + 2,
    )
    return ScenarioWorld(
        "directed-patrol",
        places,
        mobility.initial_units(protection_range),
        record_stream(mobility, stream_length),
        mobility,
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "downtown",
            "clustered high-value core on a Manhattan grid",
            _downtown,
        ),
        Scenario(
            "old-town",
            "radial ring-and-spoke streets, clustered places",
            _old_town,
        ),
        Scenario(
            "suburbia",
            "uniform sprawl with mild protection requirements",
            _suburbia,
        ),
        Scenario(
            "directed-patrol",
            "fleet destinations biased towards banks and stations",
            _directed_patrol,
        ),
    )
}


def build_scenario(name: str, **kwargs) -> ScenarioWorld:
    """Build a named scenario (see :data:`SCENARIOS`)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return scenario.build(**kwargs)
