"""Unit + property tests for the uniform grid partition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Circle, Point, Rect
from repro.grid import GridPartition

unit = st.floats(0.0, 1.0, allow_nan=False)


@pytest.fixture
def grid() -> GridPartition:
    return GridPartition.unit_square(10)


class TestConstruction:
    def test_unit_square_shape(self, grid):
        assert grid.nx == grid.ny == 10
        assert grid.cell_count == 100
        assert grid.cell_width == pytest.approx(0.1)

    def test_rejects_zero_granularity(self):
        with pytest.raises(ValueError):
            GridPartition.unit_square(0)

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            GridPartition(Rect(0.0, 0.0, 0.0, 1.0), 2, 2)

    def test_non_square_grid(self):
        g = GridPartition(Rect(0.0, 0.0, 2.0, 1.0), 4, 2)
        assert g.cell_width == pytest.approx(0.5)
        assert g.cell_height == pytest.approx(0.5)


class TestCellOf:
    def test_interior_point(self, grid):
        assert grid.cell_of(Point(0.05, 0.05)) == (0, 0)
        assert grid.cell_of(Point(0.95, 0.95)) == (9, 9)

    def test_cell_boundary_belongs_to_next_cell(self, grid):
        # half-open cells: x = 0.1 starts cell 1.
        assert grid.cell_of(Point(0.1, 0.0)) == (1, 0)

    def test_space_max_boundary_clamped(self, grid):
        assert grid.cell_of(Point(1.0, 1.0)) == (9, 9)

    def test_outside_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cell_of(Point(1.5, 0.5))

    @given(unit, unit)
    def test_point_contained_in_its_cell(self, x, y):
        grid = GridPartition.unit_square(7)
        cell = grid.cell_of(Point(x, y))
        assert grid.cell_rect(cell).contains_point(Point(x, y))

    @given(unit, unit)
    def test_cell_of_is_unique_modulo_boundaries(self, x, y):
        """A point strictly inside one cell is in no other cell's interior."""
        grid = GridPartition.unit_square(5)
        cell = grid.cell_of(Point(x, y))
        rect = grid.cell_rect(cell)
        interior = (
            rect.xmin < x < rect.xmax and rect.ymin < y < rect.ymax
        )
        if interior:
            owners = [
                c
                for c in grid.all_cells()
                if grid.cell_rect(c).contains_point(Point(x, y))
            ]
            assert owners == [cell]


class TestCellRect:
    def test_first_cell(self, grid):
        rect = grid.cell_rect((0, 0))
        assert (rect.xmin, rect.ymin) == (0.0, 0.0)
        assert rect.xmax == pytest.approx(0.1)

    def test_cells_tile_the_space(self, grid):
        total = sum(grid.cell_rect(c).area for c in grid.all_cells())
        assert total == pytest.approx(1.0)

    def test_bad_cell_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cell_rect((10, 0))
        with pytest.raises(ValueError):
            grid.cell_rect((-1, 0))


class TestLinearIndex:
    def test_roundtrip_all_cells(self, grid):
        for cell in grid.all_cells():
            assert grid.from_linear(grid.linear(cell)) == cell

    def test_linear_dense_and_unique(self, grid):
        values = sorted(grid.linear(c) for c in grid.all_cells())
        assert values == list(range(grid.cell_count))

    def test_from_linear_out_of_range(self, grid):
        with pytest.raises(ValueError):
            grid.from_linear(100)


class TestOverlapQueries:
    def test_rect_overlap_single_cell(self, grid):
        cells = list(grid.cells_overlapping_rect(Rect(0.41, 0.41, 0.49, 0.49)))
        assert cells == [(4, 4)]

    def test_rect_overlap_multiple(self, grid):
        cells = set(grid.cells_overlapping_rect(Rect(0.05, 0.05, 0.15, 0.15)))
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_rect_outside_space(self, grid):
        assert list(grid.cells_overlapping_rect(Rect(2.0, 2.0, 3.0, 3.0))) == []

    def test_rect_partially_outside_clipped(self, grid):
        cells = set(grid.cells_overlapping_rect(Rect(-1.0, -1.0, 0.05, 0.05)))
        assert cells == {(0, 0)}

    def test_circle_touching_cells(self, grid):
        cells = set(grid.cells_touching_circle(Circle(Point(0.45, 0.45), 0.1)))
        # disk of radius 0.1 centred mid-cell: reaches the 4 orthogonal
        # neighbours but not the diagonal ones (corner distance ~0.07+).
        assert (4, 4) in cells
        assert (3, 4) in cells and (5, 4) in cells
        assert (4, 3) in cells and (4, 5) in cells

    def test_circle_cells_all_actually_touch(self, grid):
        circle = Circle(Point(0.3, 0.7), 0.17)
        for cell in grid.cells_touching_circle(circle):
            assert circle.intersects_rect(grid.cell_rect(cell))

    @given(unit, unit, st.floats(0.01, 0.3))
    def test_circle_touch_set_is_complete(self, cx, cy, radius):
        """Every cell the disk intersects is returned."""
        grid = GridPartition.unit_square(6)
        circle = Circle(Point(cx, cy), radius)
        returned = set(grid.cells_touching_circle(circle))
        for cell in grid.all_cells():
            if circle.intersects_rect(grid.cell_rect(cell)):
                assert cell in returned
