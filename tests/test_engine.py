"""The composable monitoring engine: phase API, session facade, hooks."""

import pytest

from repro.core import (
    BasicCTUP,
    ChangeTracker,
    CTUPConfig,
    NaiveCTUP,
    OptCTUP,
)
from repro.core.batch import BatchProcessor
from repro.core.metrics import InitReport, UpdateReport
from repro.core.multik import MultiQueryCTUP
from repro.engine import MonitorHooks, MonitorSession
from repro.validate import Oracle
from repro.workloads import build_scenario

ALL_SCHEMES = [NaiveCTUP, BasicCTUP, OptCTUP]

SCENARIOS = ["downtown", "suburbia"]


@pytest.fixture(params=SCENARIOS, scope="module")
def scenario_world(request):
    return build_scenario(
        request.param,
        seed=7,
        n_places=500,
        n_units=15,
        protection_range=0.1,
        stream_length=120,
    )


@pytest.fixture(scope="module")
def scenario_config():
    return CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=8)


class TestPhaseAPI:
    """process() decomposes into apply_update() + refresh() exactly."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda c: c.name)
    def test_phases_equal_process(
        self, scheme, scenario_config, scenario_world
    ):
        whole = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        split = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        whole.initialize()
        split.initialize()
        for update in scenario_world.stream:
            whole.process(update)
            split.apply_update(update)
            split.refresh()
            assert split.sk() == whole.sk()
            assert split.topk_ids() == whole.topk_ids()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda c: c.name)
    def test_phase_counters_match_process(
        self, scheme, scenario_config, scenario_world
    ):
        """The work counters don't depend on how the phases are driven."""
        whole = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        split = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        whole.initialize()
        split.initialize()
        for update in scenario_world.stream:
            whole.process(update)
            split.apply_update(update)
            split.refresh()
        whole_counts = {
            name: value
            for name, value in whole.counters.as_dict().items()
            if not name.startswith("time_")
        }
        split_counts = {
            name: value
            for name, value in split.counters.as_dict().items()
            if not name.startswith("time_")
        }
        assert whole_counts == split_counts

    def test_refresh_before_initialize_raises(
        self, scenario_config, scenario_world
    ):
        monitor = OptCTUP(
            scenario_config, scenario_world.places, scenario_world.units
        )
        with pytest.raises(RuntimeError):
            monitor.refresh()
        with pytest.raises(RuntimeError):
            monitor.apply_update(scenario_world.stream[0])


class TestSchemeAgnosticBatching:
    """Satellite: batch == single-update for all three schemes."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda c: c.name)
    @pytest.mark.parametrize("batch_size", [4, 32])
    def test_batched_equals_sequential(
        self, scheme, batch_size, scenario_config, scenario_world
    ):
        sequential = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        batched = scheme(
            scenario_config, scenario_world.places, scenario_world.units
        )
        sequential.initialize()
        batched.initialize()
        MonitorSession(sequential).run(scenario_world.stream)
        consumed = BatchProcessor(batched).run_stream(
            scenario_world.stream, batch_size
        )
        assert consumed == len(scenario_world.stream)
        assert batched.sk() == sequential.sk()
        assert batched.topk_ids() == sequential.topk_ids()
        oracle = Oracle(scenario_world.places, scenario_world.units)
        for update in scenario_world.stream:
            oracle.apply(update)
        verdict = oracle.validate(batched.top_k(), scenario_config.k)
        assert verdict.ok, verdict.problems

    @pytest.mark.parametrize(
        "scheme", [NaiveCTUP, BasicCTUP], ids=lambda c: c.name
    )
    def test_batching_saves_accesses(
        self, scheme, scenario_config, scenario_world
    ):
        """Deferring the access phase is a win beyond OptCTUP too."""

        def accesses(batch_size: int) -> int:
            monitor = scheme(
                scenario_config, scenario_world.places, scenario_world.units
            )
            monitor.initialize()
            base = monitor.counters.cells_accessed
            BatchProcessor(monitor).run_stream(
                scenario_world.stream, batch_size
            )
            return monitor.counters.cells_accessed - base

        assert accesses(30) < accesses(1)

    def test_run_stream_collects_reports(
        self, scenario_config, scenario_world
    ):
        monitor = OptCTUP(
            scenario_config, scenario_world.places, scenario_world.units
        )
        monitor.initialize()
        reports = BatchProcessor(monitor).run_stream(
            scenario_world.stream, 50, collect=True
        )
        assert len(reports) == -(-len(scenario_world.stream) // 50)
        assert all(isinstance(r, UpdateReport) for r in reports)
        assert reports[-1].sk == monitor.sk()

    def test_monitor_run_stream_collects_reports(
        self, scenario_config, scenario_world
    ):
        monitor = NaiveCTUP(
            scenario_config, scenario_world.places, scenario_world.units
        )
        monitor.initialize()
        with pytest.warns(DeprecationWarning):  # legacy surface, kept exact
            reports = monitor.run_stream(
                scenario_world.stream.prefix(10), collect=True
            )
        assert len(reports) == 10
        assert all(isinstance(r, UpdateReport) for r in reports)


class TestSchemeAgnosticMultiQuery:
    """Satellite: MultiQueryCTUP over naive/basic agrees with opt."""

    @pytest.mark.parametrize(
        "scheme", [NaiveCTUP, BasicCTUP], ids=lambda c: c.name
    )
    def test_agrees_with_opt_backed(
        self, scheme, scenario_config, scenario_world
    ):
        def build(factory):
            multi = MultiQueryCTUP(
                scenario_config,
                scenario_world.places,
                scenario_world.units,
                monitor_factory=factory,
            )
            multi.register("dispatch", 2)
            multi.register("dashboard", 7)
            multi.initialize()
            return multi

        reference = build(OptCTUP)
        alternative = build(scheme)
        assert alternative.shared_k == 7
        for update in scenario_world.stream.prefix(60):
            reference.process(update)
            alternative.process(update)
            for query in ("dispatch", "dashboard"):
                sk = reference.sk(query)
                ours = alternative.top_k(query)
                theirs = reference.top_k(query)
                assert alternative.sk(query) == sk
                # schemes agree on the safety profile and on every place
                # strictly below SK; which place fills a slot *tied at
                # SK* is the contract's documented ambiguity.
                assert [r.safety for r in ours] == [r.safety for r in theirs]
                assert {r.place_id for r in ours if r.safety < sk} == {
                    r.place_id for r in theirs if r.safety < sk
                }

    def test_oracle_validates_non_opt_backend(
        self, scenario_config, scenario_world
    ):
        multi = MultiQueryCTUP(
            scenario_config,
            scenario_world.places,
            scenario_world.units,
            monitor_factory=BasicCTUP,
        )
        multi.register("q", 4)
        multi.initialize()
        oracle = Oracle(scenario_world.places, scenario_world.units)
        for update in scenario_world.stream.prefix(40):
            oracle.apply(update)
            multi.process(update)
        verdict = oracle.validate(multi.top_k("q"), 4)
        assert verdict.ok, verdict.problems


class RecordingHooks(MonitorHooks):
    def __init__(self):
        self.events = []

    def on_update_start(self, update):
        self.events.append(("update_start", update.unit_id))

    def on_update_end(self, update, report):
        self.events.append(("update_end", update.unit_id))

    def on_batch_flush(self, updates, report):
        self.events.append(("batch_flush", len(updates)))

    def on_topk_change(self, change):
        self.events.append(("topk_change", change.timestamp))

    def on_refresh(self, accessed):
        self.events.append(("refresh", accessed))


class TestSessionHooks:
    def test_update_end_then_topk_change_in_order(
        self, small_config, small_places, small_units, small_stream
    ):
        """Acceptance: on_update_end + on_topk_change fire in order."""
        monitor = OptCTUP(small_config, small_places, small_units)
        hooks = RecordingHooks()
        session = MonitorSession(monitor, hooks=[hooks])
        session.start()
        for update in small_stream:
            session.feed(update)
        kinds = [kind for kind, _ in hooks.events]
        assert kinds.count("update_end") == len(small_stream)
        assert "topk_change" in kinds, "stream should move the result"
        # every change is announced immediately after the update that
        # caused it — never before its update_end, never delayed.
        for i, (kind, _) in enumerate(hooks.events):
            if kind == "topk_change":
                assert hooks.events[i - 1][0] == "update_end"
        # per-update ordering: start, refresh, end.
        first = kinds.index("update_start")
        assert kinds[first : first + 3] == [
            "update_start",
            "refresh",
            "update_end",
        ]

    def test_changes_match_tracker(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        hooks = RecordingHooks()
        session = MonitorSession(monitor, hooks=[hooks])
        session.run(small_stream)
        changes = [e for e in hooks.events if e[0] == "topk_change"]
        assert len(changes) == session.tracker.changes_seen

    def test_batch_flush_hook(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        hooks = RecordingHooks()
        session = MonitorSession(monitor, batch_size=40, hooks=[hooks])
        processed = session.run(small_stream)
        assert processed == len(small_stream)
        flushes = [e for e in hooks.events if e[0] == "batch_flush"]
        assert len(flushes) == -(-len(small_stream) // 40)
        # the final partial burst is flushed by run().
        assert flushes[-1][1] == (len(small_stream) % 40 or 40)


class TestSession:
    def test_start_returns_init_report(
        self, small_config, small_places, small_units
    ):
        session = MonitorSession(
            OptCTUP(small_config, small_places, small_units)
        )
        report = session.start()
        assert isinstance(report, InitReport)
        assert report.sk == session.monitor.sk()
        with pytest.raises(RuntimeError):
            session.start()

    def test_adopts_initialized_monitor(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        hooks = RecordingHooks()
        session = MonitorSession(monitor, hooks=[hooks])
        assert session.start() is None
        # priming means no giant bootstrap change fires on the first feed.
        session.feed(small_stream[0])
        changes = [e for e in hooks.events if e[0] == "topk_change"]
        assert len(changes) <= 1

    def test_batched_session_matches_single(
        self, small_config, small_places, small_units, small_stream
    ):
        single = OptCTUP(small_config, small_places, small_units)
        batched = OptCTUP(small_config, small_places, small_units)
        MonitorSession(single).run(small_stream)
        MonitorSession(batched, batch_size=16).run(small_stream)
        assert batched.sk() == single.sk()
        assert batched.topk_ids() == single.topk_ids()

    def test_audit_runs_periodically(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        session = MonitorSession(monitor, audit_every=50)
        session.run(small_stream)
        assert session.audit_problems == []

    def test_negative_parameters_rejected(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        with pytest.raises(ValueError):
            MonitorSession(monitor, batch_size=-1)
        with pytest.raises(ValueError):
            MonitorSession(monitor, audit_every=-1)

    def test_works_with_every_scheme(
        self, small_config, small_places, small_units, small_stream
    ):
        for scheme in ALL_SCHEMES:
            monitor = scheme(small_config, small_places, small_units)
            session = MonitorSession(monitor, batch_size=10)
            assert session.run(small_stream.prefix(30)) == 30
            assert len(monitor.top_k()) == small_config.k


class TestChangeTrackerReport:
    """Satellite: ChangeTracker.initialize() forwards the InitReport."""

    def test_initialize_returns_init_report(
        self, small_config, small_places, small_units
    ):
        tracker = ChangeTracker(
            OptCTUP(small_config, small_places, small_units)
        )
        report = tracker.initialize()
        assert isinstance(report, InitReport)
        assert report.sk == tracker.monitor.sk()
        assert report.maintained_places == tracker.monitor.maintained_count()
