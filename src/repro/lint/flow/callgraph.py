"""A project-wide call graph over per-function summaries.

Each function/method gets a :class:`FunctionSummary` listing its call
sites; summaries are plain data (JSON round-trippable) so the
incremental cache can keep them for unchanged files and the graph can
be rebuilt without re-parsing the whole tree. Nested defs and lambdas
are folded into their enclosing function — a call made by a closure
the function creates is treated as a call the function makes, which is
exactly the conservative view the phase-protocol rule needs (the
``flush()`` closure inside a drain helper *is* part of the drain path).

Resolution is name-based and deliberately conservative:

* ``self.helper(...)`` resolves within the receiver class and its
  ancestors (hierarchy from the :class:`~repro.lint.engine.ProjectIndex`);
* bare ``helper(...)`` resolves to a module-level function of the same
  module;
* ``other.helper(...)`` resolves to *every* known method of that name —
  over-approximate, never unsound for reachability questions.
"""

from __future__ import annotations

import ast
import dataclasses
from collections import deque
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # engine does not import flow; no cycle at runtime
    from repro.lint.engine import ProjectIndex

#: call-site kinds.
KIND_SELF = "self"
KIND_NAME = "name"
KIND_ATTR = "attr"


@dataclasses.dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str
    kind: str
    line: int
    col: int
    receiver: str = ""

    def to_payload(self) -> dict[str, Any]:
        return {
            "callee": self.callee,
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "receiver": self.receiver,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CallSite":
        return cls(
            callee=str(payload["callee"]),
            kind=str(payload["kind"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            receiver=str(payload.get("receiver", "")),
        )


@dataclasses.dataclass(frozen=True, slots=True)
class FunctionSummary:
    """One function or method, with every call site in its body
    (nested defs/lambdas folded in)."""

    module: str
    path: str
    qualname: str
    name: str
    class_name: str | None
    line: int
    calls: tuple[CallSite, ...]

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)

    def to_payload(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "qualname": self.qualname,
            "name": self.name,
            "class_name": self.class_name,
            "line": self.line,
            "calls": [site.to_payload() for site in self.calls],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FunctionSummary":
        raw_class = payload.get("class_name")
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            qualname=str(payload["qualname"]),
            name=str(payload["name"]),
            class_name=None if raw_class is None else str(raw_class),
            line=int(payload["line"]),
            calls=tuple(
                CallSite.from_payload(site) for site in payload["calls"]
            ),
        )


def _dotted_receiver(node: ast.expr) -> str:
    """Best-effort dotted text of a call receiver (for messages)."""
    parts: list[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
    elif isinstance(cursor, ast.Call):
        parts.append("()")
    parts.reverse()
    return ".".join(parts)


def _call_sites(body: Iterable[ast.stmt]) -> tuple[CallSite, ...]:
    """All call sites in a function body, nested defs included."""
    sites: list[CallSite] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                sites.append(
                    CallSite(func.id, KIND_NAME, node.lineno, node.col_offset)
                )
            elif isinstance(func, ast.Attribute):
                receiver = _dotted_receiver(func.value)
                kind = KIND_SELF if receiver == "self" else KIND_ATTR
                sites.append(
                    CallSite(
                        func.attr,
                        kind,
                        node.lineno,
                        node.col_offset,
                        receiver=receiver,
                    )
                )
    return tuple(sites)


def function_summaries(
    tree: ast.Module, module: str, path: str
) -> tuple[FunctionSummary, ...]:
    """Summaries for every module-level function and every method of
    every class in ``tree``. Nested defs are folded into the summary of
    the enclosing function, not listed separately."""
    summaries: list[FunctionSummary] = []

    def add(
        node: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
    ) -> None:
        qualname = (
            node.name if class_name is None else f"{class_name}.{node.name}"
        )
        summaries.append(
            FunctionSummary(
                module=module,
                path=path,
                qualname=qualname,
                name=node.name,
                class_name=class_name,
                line=node.lineno,
                calls=_call_sites(node.body),
            )
        )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(member, stmt.name)
    return tuple(summaries)


class CallGraph:
    """Name-based resolution and reachability over function summaries."""

    def __init__(
        self,
        summaries: Iterable[FunctionSummary],
        index: "ProjectIndex | None" = None,
    ) -> None:
        self._index = index
        self._by_key: dict[tuple[str, str], FunctionSummary] = {}
        self._methods_by_name: dict[str, list[FunctionSummary]] = {}
        self._module_functions: dict[tuple[str, str], FunctionSummary] = {}
        for summary in summaries:
            self._by_key[summary.key] = summary
            if summary.class_name is None:
                self._module_functions[(summary.module, summary.name)] = summary
            else:
                self._methods_by_name.setdefault(summary.name, []).append(
                    summary
                )

    def __iter__(self) -> Iterator[FunctionSummary]:
        for key in sorted(self._by_key):
            yield self._by_key[key]

    def find(self, module: str, qualname: str) -> FunctionSummary | None:
        return self._by_key.get((module, qualname))

    def methods_named(self, name: str) -> tuple[FunctionSummary, ...]:
        return tuple(
            sorted(
                self._methods_by_name.get(name, ()),
                key=lambda summary: summary.key,
            )
        )

    def _class_family(self, class_name: str) -> frozenset[str]:
        """The class plus its known ancestors (names)."""
        if self._index is None:
            return frozenset({class_name})
        family = {class_name}
        info = self._index.classes.get(class_name)
        if info is not None:
            family.update(
                ancestor.name for ancestor in self._index.ancestors(class_name)
            )
        return frozenset(family)

    def resolve(
        self, caller: FunctionSummary, site: CallSite
    ) -> tuple[FunctionSummary, ...]:
        """Every summary a call site may dispatch to (over-approximate)."""
        if site.kind == KIND_NAME:
            target = self._module_functions.get((caller.module, site.callee))
            return () if target is None else (target,)
        candidates = self._methods_by_name.get(site.callee, [])
        if site.kind == KIND_SELF and caller.class_name is not None:
            family = self._class_family(caller.class_name)
            scoped = [
                summary
                for summary in candidates
                if summary.class_name in family
            ]
            # a self-call can also land on an override in a subclass the
            # index knows about; include descendants' definitions.
            if self._index is not None:
                for summary in candidates:
                    if summary in scoped or summary.class_name is None:
                        continue
                    if self._index.is_descendant_of(
                        summary.class_name, caller.class_name
                    ):
                        scoped.append(summary)
            candidates = scoped
        return tuple(sorted(candidates, key=lambda summary: summary.key))

    def reachable_from(
        self, roots: Iterable[FunctionSummary]
    ) -> dict[tuple[str, str], tuple[str, str]]:
        """BFS closure: every reachable function key mapped to the root
        key it was first reached from (roots map to themselves)."""
        origin: dict[tuple[str, str], tuple[str, str]] = {}
        queue: deque[FunctionSummary] = deque()
        for root in roots:
            if root.key not in origin:
                origin[root.key] = root.key
                queue.append(root)
        while queue:
            current = queue.popleft()
            for site in current.calls:
                for target in self.resolve(current, site):
                    if target.key in origin:
                        continue
                    origin[target.key] = origin[current.key]
                    queue.append(target)
        return origin
