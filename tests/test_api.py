"""The ``repro.api`` facade: the one supported way in."""

import pytest

from repro.api import (
    SCHEMES,
    ShardSpec,
    make_monitor,
    open_session,
    scheme_factory,
)
from repro.core import BasicCTUP, NaiveCTUP, OptCTUP
from repro.core.incremental import IncrementalNaiveCTUP
from repro.engine.session import MonitorSession
from repro.shard import ShardPlan, ShardedMonitor


class TestSchemeRegistry:
    def test_registry_names(self):
        assert set(SCHEMES) == {"naive", "basic", "opt", "incremental"}

    def test_registry_maps_names_to_classes(self):
        assert SCHEMES["naive"] is NaiveCTUP
        assert SCHEMES["basic"] is BasicCTUP
        assert SCHEMES["opt"] is OptCTUP
        assert SCHEMES["incremental"] is IncrementalNaiveCTUP

    def test_scheme_factory_resolves_names_and_passes_callables(self):
        assert scheme_factory("opt") is OptCTUP
        custom = lambda config, places, units: NaiveCTUP(config, places, units)
        assert scheme_factory(custom) is custom

    def test_scheme_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_factory("quantum")

    def test_scheme_factory_error_lists_spec_usage(self):
        with pytest.raises(ValueError, match=r"shard=ShardSpec"):
            scheme_factory("quantum")

    def test_sharded_is_first_class(self):
        assert scheme_factory("sharded") is ShardedMonitor
        assert "sharded" in type(SCHEMES).__doc__


class TestMakeMonitor:
    def test_default_is_plain_opt(self, small_config, small_places, small_units):
        monitor = make_monitor(
            places=small_places, units=small_units, config=small_config
        )
        assert isinstance(monitor, OptCTUP)
        assert not monitor.initialized

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_every_scheme_buildable(
        self, name, small_config, small_places, small_units
    ):
        monitor = make_monitor(
            name, places=small_places, units=small_units, config=small_config
        )
        assert isinstance(monitor, SCHEMES[name])

    def test_sharded_when_shards_requested(
        self, small_config, small_places, small_units
    ):
        monitor = make_monitor(
            "basic",
            places=small_places,
            units=small_units,
            config=small_config,
            shard=ShardSpec(shards=3, strategy="interleaved"),
        )
        assert isinstance(monitor, ShardedMonitor)
        assert monitor.plan.n_shards == 3
        assert monitor.scheme_name == "basic"
        assert all(
            isinstance(sh.monitor, BasicCTUP) for sh in monitor.shards
        )

    def test_accepts_explicit_shard_plan(
        self, small_config, small_places, small_units
    ):
        probe = make_monitor(
            places=small_places, units=small_units, config=small_config
        )
        plan = ShardPlan.hashed(probe.grid, 4, seed=2)
        monitor = make_monitor(
            places=small_places,
            units=small_units,
            config=small_config,
            shard=plan,
        )
        assert isinstance(monitor, ShardedMonitor)
        assert monitor.plan is plan

    def test_default_config_when_omitted(self, small_places):
        from repro.workloads import generate_units

        from repro.core import CTUPConfig

        units = generate_units(5, CTUPConfig().protection_range, seed=1)
        monitor = make_monitor("naive", places=small_places, units=units)
        assert monitor.config.k == CTUPConfig().k


class TestOpenSession:
    def test_builds_and_runs(
        self, small_config, small_places, small_units, small_stream, small_oracle
    ):
        session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
        )
        assert isinstance(session, MonitorSession)
        report = session.start()
        assert report is not None and report.places_loaded > 0
        assert session.run(small_stream) == len(small_stream)
        for update in small_stream:
            small_oracle.apply(update)
        verdict = small_oracle.validate(
            session.monitor.top_k(), small_config.k
        )
        assert verdict.ok, verdict.problems

    def test_forwards_session_knobs(
        self, small_config, small_places, small_units
    ):
        session = open_session(
            places=small_places,
            units=small_units,
            config=small_config,
            batch_size=8,
            audit_every=100,
            track_changes=False,
        )
        assert session.batch_size == 8
        assert session.batcher is not None
        assert session.audit_every == 100
        assert session.track_changes is False

    def test_adopts_existing_monitor(
        self, small_config, small_places, small_units
    ):
        monitor = make_monitor(
            "naive", places=small_places, units=small_units, config=small_config
        )
        session = open_session(monitor=monitor)
        assert session.monitor is monitor

    def test_rejects_neither_monitor_nor_world(self):
        with pytest.raises(ValueError, match="either a monitor or places"):
            open_session("opt")

    def test_rejects_both_monitor_and_world(
        self, small_config, small_places, small_units
    ):
        monitor = make_monitor(
            places=small_places, units=small_units, config=small_config
        )
        with pytest.raises(ValueError, match="not both"):
            open_session(monitor=monitor, places=small_places)

    def test_sharded_session_end_to_end(
        self, small_config, small_places, small_units, small_stream
    ):
        session = open_session(
            "opt",
            places=small_places,
            units=small_units,
            config=small_config,
            shard=ShardSpec(shards=4),
        )
        session.start()
        session.run(small_stream)
        sharded = session.monitor
        assert isinstance(sharded, ShardedMonitor)
        assert len(sharded.top_k()) == small_config.k


class TestRunStreamDeprecation:
    def test_warns_and_still_works(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        with pytest.warns(DeprecationWarning, match="run_stream"):
            consumed = monitor.run_stream(small_stream)
        assert consumed == len(small_stream)
        assert monitor.counters.updates_processed == len(small_stream)

    def test_matches_session_path(
        self, small_config, small_places, small_units, small_stream
    ):
        legacy = OptCTUP(small_config, small_places, small_units)
        legacy.initialize()
        with pytest.warns(DeprecationWarning):
            legacy.run_stream(small_stream)
        modern = open_session(
            "opt", places=small_places, units=small_units, config=small_config
        )
        modern.start()
        modern.run(small_stream)
        assert [
            (r.place_id, r.safety) for r in legacy.top_k()
        ] == [(r.place_id, r.safety) for r in modern.monitor.top_k()]

    def test_collect_mode_returns_reports(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = NaiveCTUP(small_config, small_places, small_units)
        monitor.initialize()
        with pytest.warns(DeprecationWarning):
            reports = monitor.run_stream(small_stream.prefix(5), collect=True)
        assert len(reports) == 5
