"""Plain-text tables for experiment output.

The paper presents its evaluation as figures; a terminal reproduction
prints the same series as aligned tables, one row per x-value, one
column per algorithm/part.
"""

from __future__ import annotations

from typing import Sequence


def format_value(value) -> str:
    """Human formatting: floats to 3 significant-ish decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    text_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
