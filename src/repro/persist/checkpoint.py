"""Serialize / restore OptCTUP monitoring state (compatibility shim).

The universal state layer (:mod:`repro.state`) owns snapshotting now;
this module keeps the original OptCTUP-only entry points working on top
of it. ``snapshot_optctup`` emits a format-2 document (the state layer's
envelope), and ``restore_optctup`` reads both format 2 and the legacy
format-1 checkpoints this module used to write — including their
``repr``-based place fingerprints, which are verified with the original
(version-1) hash so old checkpoint files keep loading.

Restored format-1 monitors resume with *approximate* counters (the old
format never captured them); format-2 restores are bit-identical — see
:mod:`repro.state.snapshot`.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.core.config import CTUPConfig
from repro.core.opt import OptCTUP
from repro.geometry import Point
from repro.model import Place, Unit
from repro.state.snapshot import (
    SnapshotError,
    fingerprint_places_v1,
    restore_monitor,
    snapshot_monitor,
)

FORMAT_VERSION = 2
_LEGACY_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint cannot be applied to the supplied inputs."""


def snapshot_optctup(monitor: OptCTUP) -> str:
    """Capture a running OptCTUP's dynamic state as a JSON document."""
    if not monitor.initialized:
        raise CheckpointError("cannot checkpoint an uninitialized monitor")
    try:
        return json.dumps(snapshot_monitor(monitor))
    except SnapshotError as error:
        raise CheckpointError(str(error)) from error


def restore_optctup(
    document: str,
    places: Sequence[Place],
) -> OptCTUP:
    """Rebuild an OptCTUP from a checkpoint and the original place set.

    The restored monitor is ready for ``process()`` immediately — no
    initialization pass runs.
    """
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise CheckpointError(f"not a checkpoint document: {error}") from None
    if data.get("version") == _LEGACY_VERSION:
        return _restore_v1(data, places)
    if data.get("format") == FORMAT_VERSION:
        return _restore_v2(data, places)
    version = data.get("format", data.get("version"))
    raise CheckpointError(f"unsupported checkpoint version {version!r}")


def _restore_v2(data: dict, places: Sequence[Place]) -> OptCTUP:
    """Delegate a format-2 document to the state layer."""
    try:
        config = data["config"]
        units = [
            Unit(int(uid), Point(x, y), config["protection_range"])
            for uid, x, y in data["state"]["units"]
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint: {error}") from error
    try:
        monitor = restore_monitor(data, places=places, units=units)
    except SnapshotError as error:
        raise CheckpointError(str(error)) from error
    if not isinstance(monitor, OptCTUP):
        raise CheckpointError(
            f"checkpoint holds a {data.get('scheme')!r} monitor, "
            "not an OptCTUP"
        )
    return monitor


def _restore_v1(data: dict, places: Sequence[Place]) -> OptCTUP:
    """The original format-1 reader, kept verbatim for old files."""
    import math

    def decode_bound(value: float | str) -> float:
        return math.inf if value == "inf" else float(value)

    if data["places_fingerprint"] != fingerprint_places_v1(places):
        raise CheckpointError(
            "checkpoint was taken against a different place set"
        )
    config = CTUPConfig(
        k=data["config"]["k"],
        delta=data["config"]["delta"],
        protection_range=data["config"]["protection_range"],
        granularity=data["config"]["granularity"],
        use_doo=data["config"]["use_doo"],
    )
    units = [
        Unit(uid, Point(x, y), config.protection_range)
        for uid, x, y in data["units"]
    ]
    monitor = OptCTUP(config, places, units)

    place_by_id = {p.place_id: p for p in places}
    # cell bounds: initialize() normally populates these; install them
    # directly. Cells absent from the checkpoint hold no places.
    from repro.grid.cellstate import CellState

    for i, j, bound in data["cells"]:
        cell = (int(i), int(j))
        monitor.cell_states[cell] = CellState(
            lower_bound=decode_bound(bound),
            place_count=monitor.store.cell_place_count(cell),
        )
    for pid, safety in data["maintained"]:
        place = place_by_id.get(int(pid))
        if place is None:
            raise CheckpointError(f"maintained place {pid} not in place set")
        cell = monitor.grid.cell_of(place.location)
        monitor.maintained.insert(
            place, float(safety), monitor.grid.linear(cell)
        )
    for unit_id, i, j in data["dechash"]:
        monitor.dechash.insert(int(unit_id), (int(i), int(j)))
    monitor._initialized = True
    return monitor
