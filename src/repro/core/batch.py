"""Batch update processing.

Location updates arrive in bursts — one wireless poll cycle can deliver
dozens. Processing them one by one runs the access phase after *every*
message even though the answer is only read after the burst.
:class:`BatchProcessor` applies a whole batch's maintain phase first
(``apply_update`` calls commute across updates) and runs one
``refresh()`` at the end.

This works for **any** :class:`~repro.core.monitor.CTUPMonitor` through
the public phase API — OptCTUP skips redundant cell accesses, BasicCTUP
skips redundant illuminate/darken churn, and the naïve scheme collapses
N full recomputations into one.

It is exact, not approximate: maintain-phase work is per-update sound
regardless of when the access phase runs, and the final ``refresh()``
restores the result invariant before any answer is read. What changes
is the cost — a cell whose bound dips below SK and recovers within one
burst (a unit passing by) is never touched.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.metrics import UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.model import LocationUpdate


class BatchProcessor:
    """Exact burst processing on top of any CTUP monitor."""

    def __init__(self, monitor: CTUPMonitor) -> None:
        if not isinstance(monitor, CTUPMonitor):
            raise TypeError(
                "batch processing requires a CTUPMonitor, got "
                f"{type(monitor).__name__}"
            )
        self.monitor = monitor
        self.batches_processed = 0
        self.updates_processed = 0

    def process_batch(self, updates: Sequence[LocationUpdate]) -> UpdateReport:
        """Apply a burst of updates; the result is current afterwards.

        Returns one report covering the whole batch (its ``unit_id`` is
        the last update's).
        """
        if not updates:
            raise ValueError("empty batch")
        monitor = self.monitor
        counters = monitor.counters
        maintain_before = counters.time_maintain_s
        access_before = counters.time_access_s
        for update in updates:
            monitor.apply_update(update)
        accessed = monitor.refresh()
        self.batches_processed += 1
        self.updates_processed += len(updates)
        return UpdateReport(
            unit_id=updates[-1].unit_id,
            sk=monitor.sk(),
            cells_accessed=accessed,
            maintain_seconds=counters.time_maintain_s - maintain_before,
            access_seconds=counters.time_access_s - access_before,
        )

    def run_stream(
        self,
        updates: Iterable[LocationUpdate],
        batch_size: int,
        collect: bool = False,
    ) -> int | list[UpdateReport]:
        """Chop a stream into fixed-size batches and process them all.

        Returns the number of updates consumed, or the per-batch
        :class:`UpdateReport` list when ``collect`` is set (matching
        ``CTUPMonitor.run_stream`` ergonomics).
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        reports: list[UpdateReport] = []
        pending: list[LocationUpdate] = []
        count = 0
        for update in updates:
            pending.append(update)
            if len(pending) == batch_size:
                reports.append(self.process_batch(pending))
                count += len(pending)
                pending = []
        if pending:
            reports.append(self.process_batch(pending))
            count += len(pending)
        return reports if collect else count
