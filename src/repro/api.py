"""The one front door to the reproduction.

Examples, benchmarks and deployments used to hand-wire scheme
constructors, :class:`~repro.engine.session.MonitorSession`,
``run_stream`` loops and ``ChangeTracker`` instances, each slightly
differently. This facade gives them a single stable surface:

>>> from repro.api import open_session
>>> session = open_session(
...     "opt", places=places, units=units, config=CTUPConfig(k=10)
... )
>>> session.start()
>>> for update in stream:
...     session.feed(update)
>>> session.flush()
>>> session.monitor.top_k()

:func:`make_monitor` builds any registered scheme — including the
sharded wrapper (``shards=4``) — and :func:`open_session` wraps the
monitor in a configured session, the one supported way to drive a
stream (batching, change tracking, audits and hooks included).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.basic import BasicCTUP
from repro.core.config import CTUPConfig
from repro.core.incremental import IncrementalNaiveCTUP
from repro.core.monitor import CTUPMonitor
from repro.core.naive import NaiveCTUP
from repro.core.opt import OptCTUP
from repro.engine.hooks import MonitorHooks
from repro.engine.session import MonitorSession
from repro.model import Place, Unit
from repro.shard.monitor import ShardedMonitor
from repro.shard.plan import ShardPlan
from repro.state.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    RecoveryManager,
)

#: every registered single-monitor scheme, by its benchmark-table name.
SCHEMES: dict[str, Callable] = {
    NaiveCTUP.name: NaiveCTUP,
    BasicCTUP.name: BasicCTUP,
    OptCTUP.name: OptCTUP,
    IncrementalNaiveCTUP.name: IncrementalNaiveCTUP,
}


def scheme_factory(scheme: str | Callable) -> Callable:
    """Resolve a scheme name (or pass a factory through).

    A factory is any callable ``(config, places, units) -> CTUPMonitor``
    — the scheme classes themselves qualify.
    """
    if callable(scheme):
        return scheme
    try:
        return SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)} "
            "or pass a factory"
        ) from None


def make_monitor(
    scheme: str | Callable = "opt",
    *,
    places: Sequence[Place],
    units: Iterable[Unit],
    config: CTUPConfig | None = None,
    shards: int | Sequence[int] | ShardPlan = 0,
    parallelism: int = 0,
    shard_strategy: str = "striped",
) -> CTUPMonitor:
    """Build a monitor of any scheme, optionally sharded.

    ``shards=0`` (the default) returns the plain scheme monitor;
    anything else — a shard count, an explicit
    :class:`~repro.shard.plan.ShardPlan`, or a per-cell shard-id
    sequence — wraps the scheme in a
    :class:`~repro.shard.monitor.ShardedMonitor` (with ``parallelism``
    worker threads draining the shards when > 1). The returned monitor
    is not yet initialized.
    """
    config = config if config is not None else CTUPConfig()
    factory = scheme_factory(scheme)
    if isinstance(shards, int) and shards == 0:
        return factory(config, places, units)
    return ShardedMonitor(
        config,
        places,
        units,
        shards=shards,
        scheme=factory,
        parallelism=parallelism,
        strategy=shard_strategy,
    )


def open_session(
    scheme: str | Callable = "opt",
    *,
    places: Sequence[Place] | None = None,
    units: Iterable[Unit] | None = None,
    config: CTUPConfig | None = None,
    monitor: CTUPMonitor | None = None,
    shards: int | Sequence[int] | ShardPlan = 0,
    parallelism: int = 0,
    shard_strategy: str = "striped",
    batch_size: int = 0,
    audit_every: int = 0,
    hooks: Sequence[MonitorHooks] = (),
    track_changes: bool = True,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> MonitorSession:
    """A configured :class:`MonitorSession`, ready to ``start()``.

    Either pass ``places`` + ``units`` (plus the scheme/shard knobs of
    :func:`make_monitor`) to build the monitor here, or pass an existing
    ``monitor`` — e.g. one restored from a checkpoint — to adopt it.
    The session knobs (``batch_size``, ``audit_every``, ``hooks``,
    ``track_changes``) are forwarded unchanged.

    ``checkpoint_dir`` attaches durable state: every update is
    journaled there and snapshots are written every
    ``checkpoint_every`` flush boundaries (plus one on ``close()``).
    A fresh (non-resuming) start wipes whatever the directory held —
    the run owns it WAL-style. With ``resume=True`` the directory is
    recovered instead: the latest snapshot is restored, the journal
    tail replayed, and the returned session is **already started** and
    bit-identical to the uninterrupted run. On resume, the snapshot's
    recorded scheme and config win over the arguments (they describe
    the run being continued); pass the same ``batch_size`` the original
    run used, and a callable ``scheme`` to act as the factory for
    unregistered schemes.
    """
    if resume:
        if checkpoint_dir is None:
            raise ValueError("resume=True needs a checkpoint_dir")
        if monitor is not None:
            raise ValueError("resume=True builds its own monitor")
        if places is None or units is None:
            raise ValueError("resume needs the original places + units")
        policy = CheckpointPolicy(
            directory=checkpoint_dir, every_batches=checkpoint_every
        )
        manager = RecoveryManager(
            policy,
            places=places,
            units=units,
            factory=scheme if callable(scheme) else None,
            parallelism=parallelism,
        )
        return manager.resume_session(
            fresh_monitor=lambda: make_monitor(
                scheme,
                places=places,
                units=units,
                config=config,
                shards=shards,
                parallelism=parallelism,
                shard_strategy=shard_strategy,
            ),
            batch_size=batch_size,
            audit_every=audit_every,
            hooks=hooks,
            track_changes=track_changes,
        )
    if monitor is None:
        if places is None or units is None:
            raise ValueError(
                "open_session needs either a monitor or places + units"
            )
        monitor = make_monitor(
            scheme,
            places=places,
            units=units,
            config=config,
            shards=shards,
            parallelism=parallelism,
            shard_strategy=shard_strategy,
        )
    elif places is not None or units is not None:
        raise ValueError("pass either a monitor or places/units, not both")
    policy_arg: CheckpointPolicy | None = None
    if checkpoint_dir is not None:
        # a fresh run owns the directory: stale snapshots or journal
        # records from an earlier run must not leak into this one.
        CheckpointStore(checkpoint_dir).wipe()
        policy_arg = CheckpointPolicy(
            directory=checkpoint_dir, every_batches=checkpoint_every
        )
    return MonitorSession(
        monitor,
        batch_size=batch_size,
        audit_every=audit_every,
        hooks=hooks,
        track_changes=track_changes,
        checkpoint=policy_arg,
    )


__all__ = [
    "SCHEMES",
    "scheme_factory",
    "make_monitor",
    "open_session",
    "CheckpointPolicy",
    "MonitorSession",
    "RecoveryManager",
    "ShardedMonitor",
    "ShardPlan",
    "CTUPConfig",
]
