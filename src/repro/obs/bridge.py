"""Bridging the monitor's native ledgers into registry metrics.

The schemes already account for their work in dataclass ledgers —
``MonitorCounters`` on the monitor, ``IoStats`` on the place store,
``UnitKernelStats`` on the unit index, ``MergeStats`` on the sharded
merger.  Those stay the source of truth; the bridge *mirrors* them into
registry gauges (named ``ctup_<ledger>_<field>`` with a ``scheme``
label) on demand, so a ``/metrics`` scrape always reconciles exactly
with what the Python API reports.

``attach_observability`` is the one sanctioned way to hang an
:class:`~repro.obs.spec.Observability` bundle on a monitor: monitors
are snapshottable (RPL008 audits ``self.<attr>`` mutations outside
``__init__``), so the transient ``obs`` handle is assigned from out
here rather than from monitor methods.
"""

from __future__ import annotations

from dataclasses import fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.monitor import CTUPMonitor
    from repro.obs.registry import MetricsRegistry, NullRegistry
    from repro.obs.spec import Observability

__all__ = ["attach_observability", "sync_monitor_metrics"]


def attach_observability(monitor: "CTUPMonitor", obs: "Observability") -> None:
    """Attach the bundle to a monitor (and any shard children).

    Also registers a sync callback so every exposition snapshot
    refreshes the bridged ledger gauges first.
    """
    monitor.obs = obs
    for shard in getattr(monitor, "shards", ()):
        shard.monitor.obs = obs
    obs.add_sync(lambda: sync_monitor_metrics(obs.registry, monitor))


def _mirror(
    registry: "MetricsRegistry | NullRegistry",
    name: str,
    help: str,
    scheme: str,
    ledger: object,
) -> None:
    family = registry.gauge(name, help, labelnames=("scheme", "field"))
    for f in fields(ledger):  # type: ignore[arg-type]
        family.labels(scheme=scheme, field=f.name).set(float(getattr(ledger, f.name)))


def sync_monitor_metrics(
    registry: "MetricsRegistry | NullRegistry", monitor: "CTUPMonitor"
) -> None:
    """Mirror the monitor's ledgers into registry gauges, field by field.

    For a :class:`~repro.shard.monitor.ShardedMonitor` the *merged*
    ledgers are mirrored (that is where the monitoring work lives — the
    top-level counters only track stream totals), plus the merger stats
    and the routing delivery counters.
    """
    if not registry.enabled:
        return
    scheme = monitor.name
    merged_counters = getattr(monitor, "merged_counters", None)
    if callable(merged_counters):
        counters = merged_counters()
        io = monitor.merged_io()  # type: ignore[attr-defined]
        unit_stats = monitor.merged_unit_stats()  # type: ignore[attr-defined]
    else:
        counters = monitor.counters
        io = monitor.store.io_stats
        unit_stats = monitor.units.stats
    _mirror(
        registry,
        "ctup_monitor_counters",
        "MonitorCounters ledger, mirrored field by field.",
        scheme,
        counters,
    )
    _mirror(
        registry,
        "ctup_io_stats",
        "IoStats page-level I/O ledger, mirrored field by field.",
        scheme,
        io,
    )
    _mirror(
        registry,
        "ctup_unit_kernel_stats",
        "UnitKernelStats prefilter ledger, mirrored field by field.",
        scheme,
        unit_stats,
    )
    merger = getattr(monitor, "merger", None)
    if merger is not None:
        _mirror(
            registry,
            "ctup_merge_stats",
            "Global top-k MergeStats ledger, mirrored field by field.",
            scheme,
            merger.stats,
        )
        deliveries = registry.gauge(
            "ctup_shard_deliveries",
            "Routing outcomes: full (maintain+access) vs sync-only deliveries.",
            labelnames=("kind",),
        )
        deliveries.labels(kind="full").set(float(monitor.full_deliveries))  # type: ignore[attr-defined]
        deliveries.labels(kind="sync").set(float(monitor.sync_deliveries))  # type: ignore[attr-defined]
