"""Per-cell monitoring state.

Both monitors keep one :class:`CellState` per grid cell. BasicCTUP uses
the ``illuminated`` flag (Fig. 1); OptCTUP keeps every cell dark and only
uses the lower bound (Fig. 2). The lower bound is a float so that the
decaying-protection extension (real-valued safeties) can reuse the same
state; the core monitors only ever store integers or ``+inf`` in it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.grid.partition import CellId, GridPartition


@dataclass(slots=True)
class CellState:
    """Mutable monitoring state of one grid cell.

    ``lower_bound`` is a certified lower bound on the safety of the
    cell's *tracked-by-bound* places: all places of the cell in
    BasicCTUP, only the non-maintained places in OptCTUP. ``+inf`` means
    the bound constrains nothing (an empty cell, or a cell whose places
    are all individually maintained).
    """

    lower_bound: float = math.inf
    illuminated: bool = False
    #: number of places stored in this cell (set at initialisation; the
    #: set of places is static, so this never changes afterwards).
    place_count: int = 0
    #: how many times this cell was illuminated / accessed — the cost
    #: counter behind Fig. 9's "cell access" series.
    access_count: int = field(default=0, repr=False)

    def decrease(self, amount: float = 1.0) -> None:
        """Lower the bound by ``amount`` (a unit may have stopped protecting)."""
        self.lower_bound -= amount

    def increase(self, amount: float = 1.0) -> None:
        """Raise the bound by ``amount`` (a unit now protects the whole cell)."""
        self.lower_bound += amount


# -- checkpoint codec ------------------------------------------------------
#
# Cell-state tables are dicts keyed by CellId whose *iteration order*
# matters: the access loops break bound ties by it. The codec therefore
# encodes rows in iteration order and restores them in the same order.

def encode_bound(value: float) -> float | str:
    """JSON-safe lower bound (``inf`` has no JSON literal)."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def decode_bound(value: float | str) -> float:
    """Inverse of :func:`encode_bound`."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def export_cell_states(
    states: Mapping[CellId, CellState], grid: GridPartition
) -> list[list[float | str | bool | int]]:
    """JSON-codable rows ``[linear cell, bound, illuminated, places,
    accesses]`` in table-iteration order."""
    return [
        [
            grid.linear(cell),
            encode_bound(state.lower_bound),
            state.illuminated,
            state.place_count,
            state.access_count,
        ]
        for cell, state in states.items()
    ]


def restore_cell_states(
    rows: Iterable[Sequence[Any]], grid: GridPartition
) -> dict[CellId, CellState]:
    """Rebuild a cell-state table from :func:`export_cell_states` rows."""
    out: dict[CellId, CellState] = {}
    for linear, bound, illuminated, place_count, access_count in rows:
        out[grid.from_linear(int(linear))] = CellState(
            lower_bound=decode_bound(bound),
            illuminated=bool(illuminated),
            place_count=int(place_count),
            access_count=int(access_count),
        )
    return out
