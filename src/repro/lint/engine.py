"""The lint driver: file loading, suppressions, the project pre-pass.

Linting is two-phase. The pre-pass parses every file once and builds a
:class:`ProjectIndex` — the class hierarchy (to find CTUP monitor
subclasses wherever they live), the set of deprecated surfaces (any
function that raises ``DeprecationWarning``), and the scheme registry
literal from ``repro.api``. The rule pass then runs every registered
rule over every file against that shared index, filters the findings
through the suppression comments, and returns one sorted report.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import pathlib
import re
import tokenize
from typing import Iterable, Iterator, Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.registry import RULES, Violation, known_codes

#: ``# reprolint: disable=RPL001,RPL002 -- reason`` (file-level with
#: ``disable-file``). The reason is mandatory; RPL000 enforces it.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis"}


@dataclasses.dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``reprolint: disable`` comment."""

    codes: tuple[str, ...]
    line: int
    file_level: bool
    reason: str | None
    #: whether the comment sits alone on its line (then it covers the
    #: next code line instead of its own).
    standalone: bool


class SourceFile:
    """One parsed source file plus everything rules need from it."""

    def __init__(self, path: str, text: str, module: str | None) -> None:
        self.path = path
        self.text = text
        self.module = module
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions = list(_parse_suppressions(text))

    def in_packages(self, *prefixes: str) -> bool:
        """Whether this file's module falls under any dotted prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def suppressed_codes_for_line(self, line: int) -> frozenset[str]:
        codes: set[str] = set()
        for sup in self.suppressions:
            if sup.file_level:
                codes.update(sup.codes)
            elif sup.standalone and sup.line + 1 == line:
                codes.update(sup.codes)
            elif not sup.standalone and sup.line == line:
                codes.update(sup.codes)
        return frozenset(codes)


def _parse_suppressions(text: str) -> Iterator[Suppression]:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            yield Suppression(
                codes=codes,
                line=token.start[0],
                file_level=match.group("kind") == "disable-file",
                reason=match.group("reason"),
                standalone=token.line[: token.start[1]].strip() == "",
            )
    except tokenize.TokenError:  # unterminated strings etc.: no comments
        return


# -- the project-wide pre-pass ------------------------------------------


@dataclasses.dataclass(slots=True)
class ClassInfo:
    """What the pre-pass records about one class definition."""

    name: str
    module: str | None
    path: str
    line: int
    bases: tuple[str, ...]
    #: method name -> definition line.
    methods: dict[str, int]
    #: method name -> number of positional parameters (incl. self).
    method_arity: dict[str, int]
    #: ``STATE_FIELDS`` tuple literal from the class body (``None`` when
    #: the class doesn't declare one).
    state_fields: tuple[str, ...] | None = None
    #: ``TRANSIENT_FIELDS`` tuple literal, same convention.
    transient_fields: tuple[str, ...] | None = None


class ProjectIndex:
    """Cross-file facts shared by every rule."""

    def __init__(
        self,
        sources: Sequence[SourceFile],
        config: LintConfig | None = None,
    ) -> None:
        self.config = config or LintConfig()
        self.sources = tuple(sources)
        #: simple class name -> info (package classes shadow fixture ones).
        self.classes: dict[str, ClassInfo] = {}
        #: function names whose body raises DeprecationWarning, with the
        #: (path, line) of the definition.
        self.deprecated: dict[str, tuple[str, int]] = {}
        #: class names registered as values of ``repro.api.SCHEMES``.
        self.scheme_classes: dict[str, tuple[str, int]] = {}
        for source in sources:
            self._index_file(source)

    def _index_file(self, source: SourceFile) -> None:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                self._index_class(source, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _raises_deprecation(node):
                    self.deprecated.setdefault(
                        node.name, (source.path, node.lineno)
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._maybe_index_schemes(source, node)

    def _index_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        methods: dict[str, int] = {}
        arity: dict[str, int] = {}
        field_decls: dict[str, tuple[str, ...]] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.setdefault(item.name, item.lineno)
                arity.setdefault(
                    item.name,
                    len(item.args.posonlyargs) + len(item.args.args),
                )
            else:
                decl = _field_tuple_literal(item)
                if decl is not None:
                    field_decls.setdefault(*decl)
        info = ClassInfo(
            name=node.name,
            module=source.module,
            path=source.path,
            line=node.lineno,
            bases=tuple(
                base
                for base in (_base_name(b) for b in node.bases)
                if base is not None
            ),
            methods=methods,
            method_arity=arity,
            state_fields=field_decls.get("STATE_FIELDS"),
            transient_fields=field_decls.get("TRANSIENT_FIELDS"),
        )
        existing = self.classes.get(node.name)
        # package classes win over same-named fixture/test classes.
        if existing is None or (existing.module is None and source.module):
            self.classes[node.name] = info

    def _maybe_index_schemes(
        self, source: SourceFile, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "SCHEMES" for t in targets
        ):
            return
        value = node.value
        if (
            isinstance(value, ast.Call)
            and len(value.args) == 1
            and not value.keywords
        ):
            # `SCHEMES = _SchemeRegistry({...})` — a dict subclass whose
            # class docstring documents the entries; index the literal.
            value = value.args[0]
        if not isinstance(value, ast.Dict):
            return
        for entry in value.values:
            if isinstance(entry, ast.Name):
                self.scheme_classes.setdefault(
                    entry.id, (source.path, entry.lineno)
                )

    # -- hierarchy queries ------------------------------------------------

    def declares_state_fields(self, class_name: str) -> bool:
        """Whether the class (or any known ancestor) declares
        ``STATE_FIELDS`` — i.e. participates in the snapshot protocol."""
        infos = [self.classes.get(class_name), *self.ancestors(class_name)]
        return any(i is not None and i.state_fields is not None for i in infos)

    def snapshot_field_union(self, class_name: str) -> frozenset[str]:
        """``STATE_FIELDS`` ∪ ``TRANSIENT_FIELDS`` over the known MRO —
        the attributes a Snapshottable class is allowed to mutate after
        construction (mirrors ``collect_declared_fields``)."""
        fields: set[str] = set()
        for info in (self.classes.get(class_name), *self.ancestors(class_name)):
            if info is None:
                continue
            fields.update(info.state_fields or ())
            fields.update(info.transient_fields or ())
        return frozenset(fields)

    def ancestors(self, class_name: str) -> Iterator[ClassInfo]:
        """Known project ancestors of ``class_name``, nearest first."""
        seen: set[str] = set()
        stack = list(self.classes[class_name].bases) if class_name in self.classes else []
        while stack:
            base = stack.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is not None:
                yield info
                stack.extend(info.bases)

    def is_descendant_of(self, class_name: str, root: str) -> bool:
        return any(info.name == root for info in self.ancestors(class_name))

    def monitor_classes(self) -> Iterator[ClassInfo]:
        """Every known subclass of ``CTUPMonitor`` (the root excluded)."""
        for name, info in self.classes.items():
            if name != "CTUPMonitor" and self.is_descendant_of(name, "CTUPMonitor"):
                yield info


def _field_tuple_literal(
    node: ast.stmt,
) -> tuple[str, tuple[str, ...]] | None:
    """Parse ``STATE_FIELDS = ("a", "b")`` class-body declarations."""
    if isinstance(node, ast.AnnAssign):
        targets, value = [node.target], node.value
    elif isinstance(node, ast.Assign):
        targets, value = node.targets, node.value
    else:
        return None
    names = {
        t.id
        for t in targets
        if isinstance(t, ast.Name)
        and t.id in ("STATE_FIELDS", "TRANSIENT_FIELDS")
    }
    if len(names) != 1 or not isinstance(value, (ast.Tuple, ast.List)):
        return None
    fields = []
    for element in value.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        fields.append(element.value)
    return names.pop(), tuple(fields)


def _raises_deprecation(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        func = inner.func
        is_warn = (
            isinstance(func, ast.Attribute) and func.attr == "warn"
        ) or (isinstance(func, ast.Name) and func.id == "warn")
        if not is_warn:
            continue
        candidates = list(inner.args[1:]) + [
            kw.value for kw in inner.keywords if kw.arg == "category"
        ]
        for arg in candidates:
            if isinstance(arg, ast.Name) and arg.id == "DeprecationWarning":
                return True
            if isinstance(arg, ast.Attribute) and arg.attr == "DeprecationWarning":
                return True
    return False


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return None


# -- file collection ----------------------------------------------------


def module_name_of(path: pathlib.Path) -> str | None:
    """Dotted module name, walking packages up from the file.

    Returns ``None`` for files outside any package (tests, fixtures) —
    package-scoped rules skip those.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    node = path.parent
    while (node / "__init__.py").is_file():
        parts.insert(0, node.name)
        node = node.parent
    return ".".join(parts) if parts else None


def collect_files(paths: Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Every lintable ``.py`` file under ``paths`` (sorted, de-duplicated)."""
    out: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIR_NAMES & set(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


# -- the run ------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class LintResult:
    """Everything one run produced."""

    violations: list[Violation]
    files_checked: int
    parse_errors: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def all_findings(self) -> list[Violation]:
        return sorted(
            self.parse_errors + self.violations, key=Violation.sort_key
        )


def lint_sources(
    sources: Sequence[SourceFile], config: LintConfig | None = None
) -> LintResult:
    """Run every active rule over already-parsed sources."""
    config = config or LintConfig()
    project = ProjectIndex(sources, config)
    active = config.active_codes(known_codes())
    violations: list[Violation] = []
    for source in sources:
        for code in sorted(active):
            for violation in RULES[code].run(source, project):
                if violation.code in source.suppressed_codes_for_line(
                    violation.line
                ):
                    continue
                violations.append(violation)
    violations.sort(key=Violation.sort_key)
    return LintResult(
        violations=violations,
        files_checked=len(sources),
        parse_errors=[],
    )


def lint_paths(
    paths: Sequence[str | pathlib.Path], config: LintConfig | None = None
) -> LintResult:
    """Lint every Python file under ``paths``."""
    files = collect_files(paths)
    if config is None:
        anchor = files[0] if files else pathlib.Path.cwd()
        config = load_config(pathlib.Path(anchor))
    sources: list[SourceFile] = []
    parse_errors: list[Violation] = []
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
            sources.append(SourceFile(str(path), text, module_name_of(path)))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            parse_errors.append(
                Violation(
                    code="RPLE00",
                    message=f"could not parse: {exc}",
                    path=str(path),
                    line=int(line),
                )
            )
    result = lint_sources(sources, config)
    result.parse_errors = parse_errors
    return result
