"""RPL015 — catalog & epoch discipline (the control plane's write fence).

The place catalog and the reconfiguration epoch are control-plane state
(see :mod:`repro.control`): every mutation must flow through a journaled
control event, or recovery replays a different world than the live run
saw. Concretely:

* ``add_place`` / ``remove_place`` / ``reweight`` calls — the
  :class:`~repro.storage.placestore.PlaceStore` write surface and its
  :class:`~repro.control.catalog.PlaceCatalog` facade — are only
  allowed inside ``repro.storage`` (the owner) and ``repro.control``
  (the sanctioned entry point). Anywhere else they bypass epoch
  accounting and the journal.
* ``<monitor>.epoch`` is written only by ``repro.control`` (the bump in
  ``apply_control``) and ``repro.core.monitor`` (init / restore on
  ``self``).

The mutator check is flow-aware: binding a mutator method to a local
(``write = store.add_place``) and calling it later is caught by a
forward dataflow over the function's CFG, so the write cannot hide
behind an alias on any path. Intentional exceptions carry a reasoned
suppression (``# reprolint: disable=RPL015 -- why``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.cfg import CFG, Block, function_cfgs, scan_roots
from repro.lint.flow.dataflow import (
    BOTTOM,
    FlagLattice,
    FlagState,
    solve_forward,
)
from repro.lint.registry import Violation, rule

#: the PlaceStore/PlaceCatalog write surface.
_MUTATORS = frozenset({"add_place", "remove_place", "reweight"})
#: packages allowed to call it.
_MUTATION_OWNERS = ("repro.storage", "repro.control")
#: packages allowed to write ``.epoch`` (core.monitor only on ``self``:
#: construction and snapshot restore).
_EPOCH_OWNER = "repro.control"
_EPOCH_SELF_OWNER = "repro.core.monitor"

_UNBOUND = "unbound"
_BOUND = "bound"
_LATTICE = FlagLattice(default=_UNBOUND)


@rule(
    "RPL015",
    "catalog-epoch-discipline",
    "place-catalog mutations (add_place/remove_place/reweight) and "
    "epoch writes only happen via repro.storage / repro.control entry "
    "points; mutator aliases are tracked through the CFG",
    project_dependent=False,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro"):
        return
    yield from _check_epoch_writes(source)
    if source.in_packages(*_MUTATION_OWNERS):
        return
    yield from _check_direct_calls(source)
    for _node, cfg in function_cfgs(source.tree):
        yield from _check_aliased_calls(source, cfg)


# -- epoch writes ---------------------------------------------------------


def _check_epoch_writes(source: SourceFile) -> Iterator[Violation]:
    if source.in_packages(_EPOCH_OWNER):
        return
    monitor_owner = source.in_packages(_EPOCH_SELF_OWNER)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            elements = (
                target.elts if isinstance(target, ast.Tuple) else [target]
            )
            for element in elements:
                if (
                    not isinstance(element, ast.Attribute)
                    or element.attr != "epoch"
                ):
                    continue
                receiver = element.value
                if (
                    monitor_owner
                    and isinstance(receiver, ast.Name)
                    and receiver.id in ("self", "cls")
                ):
                    continue
                yield Violation(
                    code="RPL015",
                    message=(
                        "epoch written outside the control plane — only "
                        "repro.control.apply_control bumps a monitor's "
                        "epoch (and repro.core.monitor restores its own); "
                        "an unjournaled epoch diverges from recovery"
                    ),
                    path=source.path,
                    line=element.lineno,
                    col=element.col_offset,
                )


# -- direct mutator calls -------------------------------------------------


def _is_self_call(receiver: ast.expr) -> bool:
    return isinstance(receiver, ast.Name) and receiver.id in ("self", "cls")


def _check_direct_calls(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            continue
        if _is_self_call(func.value):
            # ``self.add_place`` is the enclosing class's own method —
            # the mutator *classes* all live in the allowed packages.
            continue
        yield Violation(
            code="RPL015",
            message=(
                f"place-catalog mutation '{func.attr}' outside "
                "repro.storage / repro.control — route it through a "
                "journaled control event (repro.control.PlaceAdded / "
                "PlaceRemoved / PlaceReweighted) so the epoch, journal "
                "and recovery see the same world"
            ),
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
        )


# -- aliased mutator calls (flow-aware) -----------------------------------


def _alias_bindings(node: ast.AST) -> dict[str, str | None]:
    """Name -> mutator it binds (or ``None`` for a clearing rebind)."""
    bindings: dict[str, str | None] = {}
    for root in scan_roots(node):
        for sub in ast.walk(root):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            bound = (
                value.attr
                if isinstance(value, ast.Attribute)
                and value.attr in _MUTATORS
                and not _is_self_call(value.value)
                else None
            )
            for target in sub.targets:
                elements = (
                    target.elts
                    if isinstance(target, ast.Tuple)
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        # tuple targets bind from an iterable, never a
                        # bare bound method — treat as clearing.
                        bindings[element.id] = (
                            bound
                            if element is target
                            else None
                        )
    return bindings


def _called_names(node: ast.AST) -> list[tuple[str, ast.Call]]:
    calls: list[tuple[str, ast.Call]] = []
    for root in scan_roots(node):
        for sub in ast.walk(root):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                calls.append((sub.func.id, sub))
    return calls


def _check_aliased_calls(
    source: SourceFile, cfg: CFG
) -> Iterator[Violation]:
    # cheap pre-filter: no block ever binds a mutator -> nothing to track.
    tracked: set[str] = set()
    for block in cfg.statement_blocks():
        if block.node is None:
            continue
        for name, bound in _alias_bindings(block.node).items():
            if bound is not None:
                tracked.add(name)
    if not tracked:
        return

    def transfer(block: Block, state: FlagState) -> FlagState:
        if block.node is None:
            return state
        bindings = _alias_bindings(block.node)
        if not bindings:
            return state
        updated = dict(state)
        for name, bound in bindings.items():
            if name in tracked:
                updated[name] = frozenset(
                    {_BOUND if bound is not None else _UNBOUND}
                )
        return updated

    in_states = solve_forward(
        cfg, _LATTICE.initial(sorted(tracked)), transfer, _LATTICE.join
    )
    for block in cfg.statement_blocks():
        if block.node is None:
            continue
        state = in_states.get(block.block_id, BOTTOM)
        if state is BOTTOM or not isinstance(state, dict):
            continue
        # the binding statement itself may both bind and call; apply the
        # block's own bindings before judging its calls.
        state = transfer(block, state)
        for name, call in _called_names(block.node):
            if name in tracked and _BOUND in _LATTICE.read(state, name):
                yield Violation(
                    code="RPL015",
                    message=(
                        f"call through '{name}', a local alias of a "
                        "place-catalog mutator, outside repro.storage / "
                        "repro.control — aliasing does not lift the "
                        "write fence; route the change through a "
                        "journaled control event"
                    ),
                    path=source.path,
                    line=call.lineno,
                    col=call.col_offset,
                )
