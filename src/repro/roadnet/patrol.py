"""Directed patrol: units biased towards high-value places.

The paper's introduction argues that "locating officers where and when
crime is concentrated can prevent crime". A *directed* patrol does not
wander uniformly — when picking a new destination it heads, with some
probability, for the neighbourhood of a high-requirement place (bank,
station, embassy) instead of a uniformly random intersection.

:class:`DirectedPatrolMobility` extends the network mobility with that
bias. The workload stays a valid update stream (same reporting rules);
only the destination distribution changes, which shifts coverage towards
the very places whose safeties decide the CTUP answer — a stress test
for the monitors' bound maintenance around hot cells.
"""

from __future__ import annotations

from typing import Sequence

from repro.model import Place
from repro.roadnet.moving import NetworkMobility, RoadObject
from repro.roadnet.network import RoadNetwork


class DirectedPatrolMobility(NetworkMobility):
    """Network mobility whose destinations favour high-value places."""

    def __init__(
        self,
        network: RoadNetwork,
        count: int,
        hotspots: Sequence[Place],
        bias: float = 0.6,
        speed: float = 0.004,
        report_distance: float = 0.004,
        seed: int = 0,
    ) -> None:
        """``bias`` is the probability a new destination targets the
        neighbourhood of a hotspot place (weighted by its required
        protection) instead of a uniform intersection."""
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be within [0, 1]")
        hotspots = [p for p in hotspots if p.required_protection > 0]
        if not hotspots:
            raise ValueError("directed patrol needs at least one hotspot")
        # Setting these before super().__init__ matters: the base
        # constructor immediately assigns first destinations.
        self._hotspots = hotspots
        self._weights = [p.required_protection for p in hotspots]
        self._bias = bias
        super().__init__(
            network,
            count,
            speed=speed,
            report_distance=report_distance,
            seed=seed,
        )

    def _assign_destination(self, obj: RoadObject) -> None:
        if self._rng.random() < self._bias:
            hotspot = self._rng.choices(self._hotspots, self._weights, k=1)[0]
            destination = self.network.nearest_node(hotspot.location)
            if destination != obj.node:
                path = self.network.shortest_path(obj.node, destination)
                obj.path = path[1:]
                obj.offset = 0.0
                return
        super()._assign_destination(obj)


def coverage_of_hotspots(
    mobility: NetworkMobility,
    hotspots: Sequence[Place],
    radius: float,
) -> float:
    """Fraction of hotspots currently within ``radius`` of some object.

    A quick scenario metric: directed patrols should keep this higher
    than uniform wandering for the same fleet size.
    """
    if not hotspots:
        raise ValueError("no hotspots given")
    covered = 0
    r2 = radius * radius
    for place in hotspots:
        for obj in mobility.objects:
            if obj.position.squared_distance_to(place.location) <= r2:
                covered += 1
                break
    return covered / len(hotspots)
