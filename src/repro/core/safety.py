"""Safety computation kernels (Definitions 2 and 3).

``safety(p) = AP(p) - RP(p)``: the number of units whose protection disk
contains ``p``, minus the place's required protection. These helpers are
the single source of truth for that arithmetic — monitors, oracle and
workload analysis all call into here.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.units import UnitIndex
from repro.geometry import Point
from repro.model import Place, Unit


def protects(unit_location: Point, protection_range: float, place_location: Point) -> bool:
    """Definition 1 as a scalar predicate (closed disk)."""
    return (
        unit_location.squared_distance_to(place_location)
        <= protection_range * protection_range
    )


def safety_arrays(
    units: UnitIndex,
    xs: np.ndarray,
    ys: np.ndarray,
    required: np.ndarray,
) -> np.ndarray:
    """Vectorised safeties for a batch of places.

    Returns ``AP - RP`` as float64 (the decaying-protection extension
    yields fractional safeties; the core path always holds integers).
    """
    ap = units.ap_counts(xs, ys)
    return ap.astype(np.float64) - np.asarray(required, dtype=np.float64)


def safety_of_place(units: UnitIndex, place: Place) -> float:
    """Exact safety of one place under the current unit positions."""
    return float(units.ap_of_point(place.location) - place.required_protection)


def brute_force_safeties(
    places: Sequence[Place], units: Iterable[Unit]
) -> dict[int, float]:
    """Reference implementation: O(|P| * |U|) scalar loops, no numpy.

    Deliberately independent from :class:`UnitIndex` so the test suite
    can cross-check the vectorised kernels against it.
    """
    units = list(units)
    result: dict[int, float] = {}
    for place in places:
        ap = sum(
            1
            for u in units
            if protects(u.location, u.protection_range, place.location)
        )
        result[place.place_id] = float(ap - place.required_protection)
    return result
