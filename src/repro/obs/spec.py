"""ObsSpec and the Observability bundle.

``ObsSpec`` is the user-facing grouped option (what you pass to
``open_session(obs=...)`` or ``ctup simulate --metrics``); an
``Observability`` is the live bundle built from it — a registry plus a
tracer plus the optional exposition port — that gets attached to
monitors, journals and sessions.

Disabled observability is represented by ``None`` (nothing attached at
all), so the hot path's only cost is one ``is None`` check.  A spec
with everything off coerces to ``None`` for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["ObsSpec", "Observability", "coerce_observability"]


@dataclass(frozen=True, slots=True)
class ObsSpec:
    """Grouped observability options for ``open_session(obs=...)``.

    metrics
        Collect registry metrics (phase histograms, session counters,
        bridged ledger gauges).
    trace
        Record spans into the in-memory ring buffer (export with
        :func:`repro.obs.write_chrome_trace` or ``--trace-out``).
    serve_port
        When set, serve ``/metrics`` (Prometheus text) and
        ``/metrics.json`` on ``127.0.0.1:<port>`` for the session's
        lifetime; ``0`` picks an ephemeral port.  Implies metrics.
    trace_capacity
        Ring-buffer size; oldest spans drop once it fills.
    """

    metrics: bool = True
    trace: bool = False
    serve_port: int | None = None
    trace_capacity: int = 4096

    def enabled(self) -> bool:
        return self.metrics or self.trace or self.serve_port is not None


class Observability:
    """A live registry + tracer pair shared by one session's components."""

    __slots__ = ("registry", "tracer", "serve_port", "_phase_hist", "_sync_callbacks")

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        serve_port: int | None = None,
    ) -> None:
        self.registry: MetricsRegistry | NullRegistry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.tracer: Tracer | NullTracer = tracer if tracer is not None else NULL_TRACER
        self.serve_port = serve_port
        self._phase_hist = self.registry.histogram(
            "ctup_phase_seconds",
            "Time spent per monitor phase, by scheme.",
            labelnames=("scheme", "phase"),
        )
        self._sync_callbacks: list[Callable[[], None]] = []

    @classmethod
    def from_spec(cls, spec: ObsSpec) -> "Observability | None":
        """Build the live bundle, or ``None`` when everything is off."""
        if not spec.enabled():
            return None
        want_metrics = spec.metrics or spec.serve_port is not None
        registry = MetricsRegistry() if want_metrics else NULL_REGISTRY
        tracer = Tracer(spec.trace_capacity) if spec.trace else NULL_TRACER
        return cls(registry=registry, tracer=tracer, serve_port=spec.serve_port)

    def phase(
        self,
        scheme: str,
        phase: str,
        start_s: float,
        duration_s: float,
        **args: object,
    ) -> None:
        """Record one already-timed monitor phase (maintain/access/...)."""
        # a fully-null bundle (both sinks disabled) must cost one method
        # call, not the label lookup + record plumbing — that is the
        # budget --obs-overhead guards.
        if not self.registry.enabled and isinstance(self.tracer, NullTracer):
            return
        self._phase_hist.labels(scheme=scheme, phase=phase).observe(duration_s)
        self.tracer.record(phase, "monitor", start_s, duration_s, scheme=scheme, **args)

    def control_event(
        self,
        scheme: str,
        kind: str,
        epoch: int,
        start_s: float,
        duration_s: float,
    ) -> None:
        """Record one applied reconfiguration event (see repro.control):
        the epoch gauge, a per-kind counter, and a span."""
        if not self.registry.enabled and isinstance(self.tracer, NullTracer):
            return
        self.registry.gauge(
            "ctup_epoch", "Current reconfiguration epoch, by scheme.",
            labelnames=("scheme",),
        ).labels(scheme=scheme).set(float(epoch))
        self.registry.counter(
            "ctup_control_events_total",
            "Control events applied, by kind.",
            labelnames=("kind",),
        ).labels(kind=kind).inc()
        self.tracer.record(
            "control.apply", "control", start_s, duration_s,
            scheme=scheme, kind=kind, epoch=epoch,
        )

    def add_sync(self, callback: Callable[[], None]) -> None:
        """Register a callback run before every exposition snapshot."""
        self._sync_callbacks.append(callback)

    def sync(self) -> None:
        """Refresh bridged ledger metrics (gauges mirroring counters)."""
        for callback in self._sync_callbacks:
            callback()


def coerce_observability(
    obs: "ObsSpec | Observability | None",
) -> Observability | None:
    """Normalize the ``obs=`` argument to a live bundle or ``None``."""
    if obs is None:
        return None
    if isinstance(obs, ObsSpec):
        return Observability.from_spec(obs)
    if isinstance(obs, Observability):
        return obs
    raise TypeError(
        f"obs= takes an ObsSpec, an Observability, or None (got {type(obs).__name__})"
    )
