"""Decaying protection (§VII, second future-work direction).

"The protection of unit to a place can be modeled as a decaying
function, i.e. the farther away, the less protected." Protection
becomes ``w(d)`` (1 at distance 0, 0 beyond the range R) and safety the
real-valued ``Σ_u w(d(u, p)) - RP(p)``.

The grid machinery survives the generalisation with two changes:

* maintained safeties change by ``w(d_new) - w(d_old)`` per unit move;
* cell bounds decrease by a *bound on the possible loss*: a unit moving
  a distance ``m`` can reduce any place's protection by at most
  ``max_loss(m)`` (the weight function's modulus of continuity), and by
  no more than the largest weight it could have exerted on the cell at
  all, ``w(mindist(old, cell))``.

DOO does not carry over unchanged (decrements are fractional and
per-move, not per-membership-flip), so this monitor uses the
conservative decrement rule only; the Δ slack works exactly as in
OptCTUP. With the step weight the scheme degenerates to integer
safeties and matches the core monitors — the test suite checks that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import CTUPConfig
from repro.core.monitor import CTUPMonitor
from repro.core.topk import MaintainedPlaces, kth_smallest
from repro.geometry import Circle, Point
from repro.geometry.distance import point_rect_distance
from repro.grid.cellstate import (
    CellState,
    export_cell_states,
    restore_cell_states,
)
from repro.grid.partition import CellId
from repro.model import LocationUpdate, Place, SafetyRecord, Unit


@dataclass(frozen=True)
class DecayModel:
    """A protection-weight profile.

    ``weight`` maps distances (numpy array) to protection weights in
    ``[0, 1]``, zero at and beyond the protection range. ``max_loss``
    bounds how much one unit's contribution to any single place can drop
    when the unit moves a given distance.
    """

    name: str
    weight: Callable[[np.ndarray], np.ndarray]
    max_loss: Callable[[float], float]

    def weight_at(self, distance: float) -> float:
        """Scalar convenience wrapper around ``weight``."""
        return float(self.weight(np.array([distance]))[0])


def linear_decay(radius: float) -> DecayModel:
    """Protection falling linearly from 1 (at the unit) to 0 (at R)."""
    if radius <= 0:
        raise ValueError("radius must be positive")

    def weight(d: np.ndarray) -> np.ndarray:
        return np.clip(1.0 - d / radius, 0.0, 1.0)

    def max_loss(move: float) -> float:
        # w is (1/R)-Lipschitz, and no loss can exceed the full weight.
        return min(1.0, move / radius)

    return DecayModel("linear", weight, max_loss)


def step_decay(radius: float) -> DecayModel:
    """The paper's core model as a decay profile: 1 inside R, 0 outside."""
    if radius <= 0:
        raise ValueError("radius must be positive")

    def weight(d: np.ndarray) -> np.ndarray:
        return (d <= radius).astype(np.float64)

    def max_loss(move: float) -> float:
        return 1.0 if move > 0 else 0.0

    return DecayModel("step", weight, max_loss)


class DecayCTUP(CTUPMonitor):
    """Top-k unsafe places under a decaying protection function."""

    name = "decay"

    STATE_FIELDS = ("cell_states", "maintained", "decay")

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
        decay: DecayModel | None = None,
    ) -> None:
        super().__init__(config, places, units)
        self.decay = decay or linear_decay(config.protection_range)
        self.cell_states: dict[CellId, CellState] = {}
        self.maintained = MaintainedPlaces()

    # -- initialization ----------------------------------------------------

    def _build_initial_state(self) -> None:
        for cell in self.store.occupied_cells():
            arrays = self.store.cell_arrays(cell)
            protection, compared = self.units.weighted_protection_near(
                arrays.xs, arrays.ys, self.grid.cell_rect(cell), self.decay.weight
            )
            safeties = protection - arrays.required
            self.counters.distance_rows += len(arrays) * compared
            self.counters.places_loaded += len(arrays)
            self.cell_states[cell] = CellState(
                lower_bound=float(safeties.min()),
                place_count=len(arrays),
            )
        accessed: list[tuple[CellId, list[Place], np.ndarray]] = []
        scratch: list[np.ndarray] = []
        sk = math.inf
        by_bound = sorted(
            self.cell_states, key=lambda c: self.cell_states[c].lower_bound
        )
        for cell in by_bound:
            if sk <= self.cell_states[cell].lower_bound:
                break
            places, safeties = self._evaluate_cell(cell)
            accessed.append((cell, places, safeties))
            scratch.append(safeties)
            sk = kth_smallest(np.concatenate(scratch), self.config.k)
        threshold = sk + self.config.delta
        for cell, places, safeties in accessed:
            state = self.cell_states[cell]
            state.access_count += 1
            linear = self.grid.linear(cell)
            keep = (safeties < threshold) | (safeties <= sk)
            dropped = safeties[~keep]
            state.lower_bound = (
                float(dropped.min()) if len(dropped) else math.inf
            )
            for place, safety, kept in zip(places, safeties, keep):
                if kept:
                    self.maintained.insert(place, float(safety), linear)

    def _evaluate_cell(self, cell: CellId) -> tuple[list[Place], np.ndarray]:
        places, arrays = self.store.read_cell_with_arrays(cell)
        protection, compared = self.units.weighted_protection_near(
            arrays.xs, arrays.ys, self.grid.cell_rect(cell), self.decay.weight
        )
        safeties = (protection - arrays.required).astype(np.float64)
        self.counters.cells_accessed += 1
        self.counters.places_loaded += len(places)
        self.counters.distance_rows += len(places) * compared
        return places, safeties

    # -- update -------------------------------------------------------------

    def _apply(self, update: LocationUpdate) -> None:
        old = self.units.apply(update)
        new = update.new_location

        scanned = self.maintained.apply_unit_move_weighted(
            old, new, self.decay.weight
        )
        self.counters.maintained_scans += scanned
        self.counters.distance_rows += 2 * scanned

        self._decay_bounds(old, new, self.config.protection_range)

    def _refresh(self) -> int:
        return self._access_below_sk()

    def _decay_bounds(self, old: Point, new: Point, radius: float) -> None:
        """Lower every reachable cell's bound by the possible loss."""
        move = old.distance_to(new)
        loss_by_move = self.decay.max_loss(move)
        if loss_by_move <= 0:
            return
        old_disk = Circle(old, radius)
        for cell in self.grid.cells_touching_circle(old_disk):
            state = self.cell_states.get(cell)
            if state is None:
                continue
            # the unit cannot take away more weight than it could exert
            # on the cell's closest point before the move.
            reach = self.decay.weight_at(
                point_rect_distance(old, self.grid.cell_rect(cell))
            )
            loss = min(loss_by_move, reach)
            if loss > 0:
                state.decrease(loss)
                self.counters.lb_decrements += 1

    def _access_below_sk(self) -> int:
        accessed = 0
        while True:
            sk = self.sk()
            best: CellId | None = None
            best_bound = math.inf
            for cell, state in self.cell_states.items():
                if state.lower_bound < sk and state.lower_bound < best_bound:
                    best_bound = state.lower_bound
                    best = cell
            if best is None:
                return accessed
            self._access_cell(best)
            accessed += 1

    def _access_cell(self, cell: CellId) -> None:
        state = self.cell_states[cell]
        linear = self.grid.linear(cell)
        self.maintained.remove_cell(linear)
        places, safeties = self._evaluate_cell(cell)
        sk_before = self.sk()
        merged = (
            np.concatenate(
                [safeties, np.array(list(
                    self.maintained.safeties_snapshot().values()
                ))]
            )
            if len(self.maintained)
            else safeties
        )
        sk = min(sk_before, kth_smallest(merged, self.config.k))
        threshold = sk + self.config.delta
        keep = (safeties < threshold) | (safeties <= sk)
        dropped = safeties[~keep]
        state.lower_bound = float(dropped.min()) if len(dropped) else math.inf
        for place, safety, kept in zip(places, safeties, keep):
            if kept:
                self.maintained.insert(place, float(safety), linear)
        state.access_count += 1

    # -- result ---------------------------------------------------------------

    def top_k(self) -> list[SafetyRecord]:
        return self.maintained.top_k(self.config.k)

    def sk(self) -> float:
        return self.maintained.sk(self.config.k)

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        # the decay model holds callables and cannot itself be
        # serialized; its name is recorded so a restore into a monitor
        # constructed with a *different* profile is rejected.
        return {
            "decay": self.decay.name,
            "cell_states": export_cell_states(self.cell_states, self.grid),
            "maintained": self.maintained.export_rows(),
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        if fields["decay"] != self.decay.name:
            raise ValueError(
                "snapshot decay profile does not match the constructed "
                "monitor"
            )
        self.cell_states = restore_cell_states(
            fields["cell_states"], self.grid
        )
        self.maintained = MaintainedPlaces()
        self.maintained.restore_rows(
            fields["maintained"], self.store, self.grid
        )
