"""Reporters: human text and machine JSON.

The JSON schema is part of the contract (CI and tests parse it):

.. code-block:: json

    {
      "version": 1,
      "ok": false,
      "files_checked": 12,
      "violations": [
        {"code": "RPL002", "message": "...", "path": "...",
         "line": 10, "col": 4}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import RULES

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per finding."""
    findings = result.all_findings()
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.code} {v.message}" for v in findings
    ]
    by_code: dict[str, int] = {}
    for violation in findings:
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(findings)} violation(s) in {result.files_checked} "
            f"file(s) ({breakdown})"
        )
    else:
        lines.append(f"{result.files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    findings = result.all_findings()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "violations": [
            {
                "code": v.code,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col,
            }
            for v in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The registered rule table (``--list-rules``)."""
    lines = []
    for code in sorted(RULES):
        registered = RULES[code]
        lines.append(f"{code}  {registered.name}: {registered.summary}")
    return "\n".join(lines)
