"""The CTUP monitors — the paper's primary contribution.

Three interchangeable schemes implement the
:class:`~repro.core.monitor.CTUPMonitor` contract:

* :class:`~repro.core.naive.NaiveCTUP` — full recomputation (§VI baseline);
* :class:`~repro.core.basic.BasicCTUP` — dark/illuminated cells (§III);
* :class:`~repro.core.opt.OptCTUP` — DOO + Δ-slack per-place maintenance (§IV).
"""

from repro.core.config import CTUPConfig
from repro.core.dechash import DecHash
from repro.core.events import ChangeTracker, TopKChange
from repro.core.metrics import InitReport, MonitorCounters, UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.core.naive import NaiveCTUP
from repro.core.basic import BasicCTUP
from repro.core.opt import OptCTUP
from repro.core.incremental import IncrementalNaiveCTUP
from repro.core.multik import MultiQueryCTUP
from repro.core.batch import BatchProcessor
from repro.core.audit import audit_monitor
from repro.core.adaptive import AdaptiveDeltaController
from repro.core.history import TopKHistory
from repro.core.tuning import choose_delta, suggest_granularity
from repro.core.topk import MaintainedPlaces
from repro.core.units import UnitIndex

__all__ = [
    "CTUPConfig",
    "CTUPMonitor",
    "NaiveCTUP",
    "BasicCTUP",
    "OptCTUP",
    "IncrementalNaiveCTUP",
    "MultiQueryCTUP",
    "BatchProcessor",
    "audit_monitor",
    "AdaptiveDeltaController",
    "TopKHistory",
    "choose_delta",
    "suggest_granularity",
    "DecHash",
    "MaintainedPlaces",
    "UnitIndex",
    "MonitorCounters",
    "InitReport",
    "UpdateReport",
    "ChangeTracker",
    "TopKChange",
]
