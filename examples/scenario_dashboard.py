"""A text dashboard over the built-in city scenarios.

For every named scenario: tune the grid to the workload, run OptCTUP
with a per-update timeline, self-audit the final state against brute
force, and print a compact report with sparklines of how the maintained
band and SK evolved.

Run:  python examples/scenario_dashboard.py
"""

from repro.bench import Timeline
from repro.core import CTUPConfig, OptCTUP, audit_monitor
from repro.core.tuning import suggest_granularity
from repro.workloads import SCENARIOS, build_scenario

N_PLACES = 4_000
N_UNITS = 50
RANGE = 0.1
STREAM = 800


def main() -> None:
    for name in sorted(SCENARIOS):
        world = build_scenario(
            name,
            seed=7,
            n_places=N_PLACES,
            n_units=N_UNITS,
            protection_range=RANGE,
            stream_length=STREAM,
        )
        granularity = suggest_granularity(N_PLACES, RANGE)
        config = CTUPConfig(
            k=10, delta=4, protection_range=RANGE, granularity=granularity
        )
        monitor = OptCTUP(config, world.places, world.units)
        monitor.initialize()
        timeline = Timeline()
        timeline.record(monitor, world.stream)
        summary = timeline.summary()
        problems = audit_monitor(monitor)

        print(f"━━ {name} ({SCENARIOS[name].description})")
        print(
            f"   grid {granularity}x{granularity}, "
            f"SK {summary.sk_start:+.0f} -> {summary.sk_end:+.0f} "
            f"(moved {summary.sk_changes}x), "
            f"p95 update {summary.update_ms_p95:.2f} ms"
        )
        print(
            f"   maintained  {timeline.sparkline(width=48)}  "
            f"(mean {summary.maintained_mean:.0f}, max {summary.maintained_max})"
        )
        print(
            f"   SK          "
            f"{timeline.sparkline(values=timeline.sk, width=48)}"
        )
        print(
            f"   accesses: {summary.accesses_total} total over "
            f"{summary.updates} updates "
            f"({summary.updates_with_access} updates touched a cell)"
        )
        print(f"   self-audit: {'CLEAN' if not problems else problems[:2]}")
        assert not problems
        print()


if __name__ == "__main__":
    main()
