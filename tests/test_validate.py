"""The oracle must catch every kind of wrong answer."""

import pytest

from repro.geometry import Point
from repro.model import LocationUpdate, Place, SafetyRecord, Unit
from repro.validate import Oracle


@pytest.fixture
def world():
    places = [
        Place(0, Point(0.1, 0.1), 2),  # protected by unit 0 -> safety -1
        Place(1, Point(0.5, 0.5), 0),  # unprotected -> safety 0
        Place(2, Point(0.9, 0.9), 5),  # unprotected -> safety -5
    ]
    units = [Unit(0, Point(0.12, 0.1), 0.1)]
    return places, units


class TestSafeties:
    def test_exact_values(self, world):
        places, units = world
        oracle = Oracle(places, units)
        assert oracle.safeties() == {0: -1.0, 1: 0.0, 2: -5.0}

    def test_apply_moves_unit(self, world):
        places, units = world
        oracle = Oracle(places, units)
        oracle.apply(LocationUpdate(0, Point(0.12, 0.1), Point(0.9, 0.88)))
        assert oracle.safeties() == {0: -2.0, 1: 0.0, 2: -4.0}

    def test_apply_unknown_unit(self, world):
        oracle = Oracle(*world)
        with pytest.raises(KeyError):
            oracle.apply(LocationUpdate(9, Point(0, 0), Point(1, 1)))

    def test_sk_and_topk(self, world):
        places, units = world
        oracle = Oracle(places, units)
        assert oracle.sk(2) == -1.0
        assert [r.place_id for r in oracle.top_k(2)] == [2, 0]

    def test_sk_more_than_places(self, world):
        oracle = Oracle(*world)
        assert oracle.sk(10) == float("inf")


class TestValidate:
    def correct(self, oracle):
        return oracle.top_k(2)

    def test_accepts_correct_result(self, world):
        oracle = Oracle(*world)
        assert oracle.validate(self.correct(oracle), 2).ok

    def test_rejects_wrong_size(self, world):
        oracle = Oracle(*world)
        verdict = oracle.validate(self.correct(oracle)[:1], 2)
        assert not verdict.ok

    def test_rejects_wrong_safety(self, world):
        places, units = world
        oracle = Oracle(places, units)
        bad = [SafetyRecord(places[2], -99.0), SafetyRecord(places[0], -1.0)]
        verdict = oracle.validate(bad, 2)
        assert not verdict.ok
        assert any("safety" in p for p in verdict.problems)

    def test_rejects_missing_mandatory_place(self, world):
        places, units = world
        oracle = Oracle(places, units)
        # place 2 (safety -5 < SK=-1) must be reported.
        bad = [SafetyRecord(places[0], -1.0), SafetyRecord(places[1], 0.0)]
        verdict = oracle.validate(bad, 2)
        assert not verdict.ok

    def test_rejects_duplicates(self, world):
        places, units = world
        oracle = Oracle(places, units)
        bad = [SafetyRecord(places[2], -5.0), SafetyRecord(places[2], -5.0)]
        assert not oracle.validate(bad, 2).ok

    def test_rejects_unknown_place(self, world):
        places, units = world
        oracle = Oracle(places, units)
        ghost = Place(99, Point(0.3, 0.3), 0)
        bad = [SafetyRecord(places[2], -5.0), SafetyRecord(ghost, -1.0)]
        assert not oracle.validate(bad, 2).ok


class TestConstruction:
    def test_duplicate_place_ids_rejected(self):
        p = Place(0, Point(0.5, 0.5), 0)
        with pytest.raises(ValueError):
            Oracle([p, p], [Unit(0, Point(0.5, 0.5), 0.1)])

    def test_mixed_ranges_rejected(self):
        places = [Place(0, Point(0.5, 0.5), 0)]
        units = [
            Unit(0, Point(0.1, 0.1), 0.1),
            Unit(1, Point(0.2, 0.2), 0.2),
        ]
        with pytest.raises(ValueError):
            Oracle(places, units)
