"""Snapshot documents: one format for every scheme.

A snapshot is a JSON-codable dict::

    {
      "format": 2,
      "scheme": "opt",                  # which monitor wrote it
      "config": {...},                  # every CTUPConfig field
      "places_fingerprint": "...",      # content hash of the place set
      "fingerprint_version": 2,         # 1 = repr-based (legacy), 2 = float.hex
      "journal_seq": 1234,              # the journal record this cut sits at
      "session": {"updates_processed": N},
      "state": {...},                   # the monitor's export_state() payload
    }

The place set is static input and is identified by fingerprint, never
embedded: restoring against a different place set must fail loudly
rather than resume with silently wrong safeties. Version 2 fingerprints
hash ``float.hex()`` coordinates (exact); version 1 (the legacy
``repr``-based hash of the old OptCTUP-only checkpoints) is still
verified when a document declares it.

Schemes without a paged store (``ExtentCTUP``) omit the fingerprint —
they carry their place data in construction arguments, and a mismatch
surfaces as a restore error instead.
"""

from __future__ import annotations

import hashlib
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.model import Place, Unit
from repro.shard.monitor import ShardedMonitor
from repro.state.codec import decode_config, encode_config

#: version of the snapshot *document* (the envelope); the per-monitor
#: ``state`` payload is versioned separately by ``STATE_VERSION``.
FORMAT_VERSION = 2
FINGERPRINT_VERSION = 2


class SnapshotError(RuntimeError):
    """The snapshot cannot be produced or applied to the supplied inputs."""


@runtime_checkable
class Snapshottable(Protocol):
    """The structural contract every checkpointable monitor satisfies.

    ``CTUPMonitor`` (and with it every registered scheme plus the
    sharded wrapper) implements it by inheritance; standalone schemes
    like ``ExtentCTUP`` implement it structurally.
    """

    def state_fields(self) -> tuple[str, ...]:
        """Declared names of all checkpointed attributes."""
        ...

    def transient_fields(self) -> tuple[str, ...]:
        """Declared names of attributes rebuilt (not stored) on restore."""
        ...

    def export_state(self) -> dict[str, Any]:
        """The full mutable state as a JSON-codable document."""
        ...

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Adopt a state document on a freshly constructed monitor."""
        ...

    def restore_counter_state(self, state: Mapping[str, Any]) -> None:
        """Re-pin caches and counters (also used post-resume-priming)."""
        ...


def fingerprint_places(places: Iterable[Place]) -> str:
    """Version-2 content hash of a place set (exact ``float.hex`` coords)."""
    digest = hashlib.sha256()
    for place in sorted(places, key=lambda p: p.place_id):
        digest.update(
            f"{place.place_id}:{place.location.x.hex()}:"
            f"{place.location.y.hex()}:{place.required_protection}\n".encode()
        )
    return digest.hexdigest()


def fingerprint_places_v1(places: Iterable[Place]) -> str:
    """The legacy (format-1) ``repr``-based hash, kept so old
    checkpoints still verify against the place set they were taken on."""
    digest = hashlib.sha256()
    for place in sorted(places, key=lambda p: p.place_id):
        digest.update(
            f"{place.place_id}:{place.location.x!r}:{place.location.y!r}"
            f":{place.required_protection}\n".encode()
        )
    return digest.hexdigest()


def snapshot_monitor(
    monitor: Snapshottable,
    *,
    journal_seq: int = 0,
    session: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Capture a running monitor as a format-2 snapshot document.

    ``journal_seq`` records the journal position this cut corresponds to
    (0 when no journal is attached); ``session`` carries session-level
    metadata (``updates_processed``) restored alongside the monitor.
    """
    try:
        state = monitor.export_state()
    except ValueError as error:
        raise SnapshotError(str(error)) from error
    document: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "scheme": state["scheme"],
        "config": encode_config(monitor.config),  # type: ignore[attr-defined]
        "journal_seq": journal_seq,
        # which reconfiguration epoch this cut belongs to (see
        # repro.control); informational at the envelope level — the
        # authoritative copy restores from the state payload.
        "epoch": getattr(monitor, "epoch", 0),
        "session": dict(session or {}),
        "state": state,
    }
    store = getattr(monitor, "store", None)
    if store is not None:
        document["places_fingerprint"] = store.fingerprint
        document["fingerprint_version"] = FINGERPRINT_VERSION
    return document


def _verify_fingerprint(
    document: Mapping[str, Any], monitor: Any, places: Iterable[Place]
) -> None:
    expected = document.get("places_fingerprint")
    if expected is None:
        return
    store = getattr(monitor, "store", None)
    version = document.get("fingerprint_version", FINGERPRINT_VERSION)
    if version == FINGERPRINT_VERSION:
        actual = (
            store.fingerprint
            if store is not None
            else fingerprint_places(places)
        )
    elif version == 1:
        actual = fingerprint_places_v1(places)
    else:
        raise SnapshotError(
            f"unsupported place fingerprint version {version!r}"
        )
    if actual != expected:
        raise SnapshotError(
            "snapshot was taken against a different place set"
        )


def restore_monitor(
    document: Mapping[str, Any],
    *,
    places: Any,
    units: Iterable[Unit],
    factory: Callable | None = None,
    parallelism: int = 0,
) -> Any:
    """Rebuild a monitor from a snapshot document and the static inputs.

    The document's own ``scheme`` and ``config`` decide what gets built
    — they are the authoritative record of the checkpointed run; the
    caller supplies the static place set and the fleet (unit positions
    are overwritten by the restore). Pass ``factory`` for schemes
    outside the registry (the extensions): it is called as
    ``factory(config, places, units)`` and must produce a monitor of the
    snapshotted scheme. ``parallelism`` is forwarded to a restored
    :class:`~repro.shard.monitor.ShardedMonitor` (thread count is
    runtime policy, not state).

    The restored monitor is ready for ``process()`` immediately — no
    initialization pass runs.
    """
    fmt = document.get("format")
    if fmt != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format {fmt!r} "
            f"(this build reads format {FORMAT_VERSION})"
        )
    try:
        config = decode_config(document["config"])
        scheme = document["scheme"]
        state = document["state"]
        if factory is not None:
            monitor = factory(config, places, units)
        elif scheme == ShardedMonitor.name:
            shard_fields = state["scheme_state"]
            monitor = ShardedMonitor(
                config,
                places,
                units,
                shards=[int(s) for s in shard_fields["plan"]],
                scheme=shard_fields["scheme_name"],
                parallelism=parallelism,
            )
        else:
            from repro.api import SCHEMES

            try:
                cls = SCHEMES[scheme]
            except KeyError:
                raise SnapshotError(
                    f"unknown scheme {scheme!r}; pass factory= for "
                    "unregistered schemes"
                ) from None
            monitor = cls(config, places, units)
        _verify_fingerprint(document, monitor, places)
        monitor.restore_state(state)
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"cannot restore snapshot: {error}") from error
    return monitor
