"""State-layer benchmark: snapshot size/cost, journal overhead, replay.

Runs the OptCTUP scheme over a pinned-seed workload unsharded (``mono``)
and sharded over four shards (``s4``), exercising the three durability
paths of :mod:`repro.state`:

- **snapshot**: one ``session.checkpoint()`` at the end of the stream —
  wall cost plus the exact document size in bytes;
- **restore**: rebuilding a monitor from that document;
- **replay**: a journal-only recovery (no snapshot at all) that re-feeds
  every journaled record through the ordinary pipeline.

Sizes and record counts are near-deterministic for a pinned workload
(the exported wall-clock counters jitter the JSON by a few bytes), so
the guard treats them like counters: ``snapshot_bytes`` growing means
the export payload changed shape, ``journal_bytes`` growing means the
per-record encoding grew, and either deserves a deliberate baseline
refresh rather than a silent drift. The recovered run must report the
exact SK of the uninterrupted one — recovery that loses state fails the
bench outright, no guard needed.

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_persist.py --smoke --check   # fast CI guard
    python benchmarks/bench_persist.py --write-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.api import DurabilitySpec, ShardSpec, open_session
from repro.bench import build_workload
from repro.bench.guard import (
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.core import CTUPConfig
from repro.state import CheckpointStore, restore_monitor

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_persist.json"
)

BENCH_NAME = "persist"
SCHEME = "opt"

#: execution modes: shard count (0 = the plain scheme).
MODES = {"mono": 0, "s4": 4}

COUNTER_METRICS = (
    "snapshot_bytes",
    "journal_bytes",
    "tail_records",
    "final_sk",
)
WALL_METRICS = ("snapshot_seconds", "restore_seconds", "replay_seconds")

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
PROFILES = {
    "smoke": dict(n_units=200, n_places=2_000, stream_length=30, seed=7),
    "default": dict(n_units=600, n_places=8_000, stream_length=150, seed=7),
}
K = 5
BATCH = 8


def machine_metadata() -> dict:
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _open(workload, config, shards, directory, resume=False):
    return open_session(
        SCHEME,
        places=workload.places,
        units=workload.units,
        config=config,
        shard=ShardSpec(shards=shards),
        batch_size=BATCH,
        track_changes=False,
        durability=DurabilitySpec(directory, resume=resume),
    )


def _run_mode(workload, config: CTUPConfig, shards: int) -> dict:
    stream = list(workload.stream)
    with tempfile.TemporaryDirectory() as raw:
        directory = pathlib.Path(raw)
        # -- snapshot + restore: a full run, one checkpoint at the end.
        session = _open(workload, config, shards, directory)
        session.start()
        for update in stream:
            session.feed(update)
        session.flush()
        final_sk = session.monitor.sk()
        start = time.perf_counter()
        snapshot_path = session.checkpoint()
        snapshot_seconds = time.perf_counter() - start
        snapshot_bytes = snapshot_path.stat().st_size
        journal_bytes = session.journal.path.stat().st_size
        session.journal.close()

        document = CheckpointStore(directory).latest()
        start = time.perf_counter()
        restored = restore_monitor(
            document, places=workload.places, units=workload.units
        )
        restore_seconds = time.perf_counter() - start
        if restored.sk() != final_sk:
            raise AssertionError(
                f"restore lost state: sk {restored.sk()} != {final_sk}"
            )

        # -- replay: journal-only recovery of a crashed (snapshot-less)
        # run over the same stream.
        for path in CheckpointStore(directory).snapshot_paths():
            path.unlink()
        start = time.perf_counter()
        resumed = _open(workload, config, shards, directory, resume=True)
        replay_seconds = time.perf_counter() - start
        tail_records = resumed.applied_seq
        if resumed.monitor.sk() != final_sk:
            raise AssertionError(
                f"replay lost state: sk {resumed.monitor.sk()} != {final_sk}"
            )
        resumed.journal.close()
    return {
        "snapshot_seconds": round(snapshot_seconds, 4),
        "restore_seconds": round(restore_seconds, 4),
        "replay_seconds": round(replay_seconds, 4),
        "snapshot_bytes": snapshot_bytes,
        "journal_bytes": journal_bytes,
        "tail_records": tail_records,
        "final_sk": final_sk,
    }


def run_profile(name: str) -> dict:
    params = PROFILES[name]
    workload = build_workload(**params)
    config = CTUPConfig(k=K)
    modes = {
        mode: _run_mode(workload, config, shards)
        for mode, shards in MODES.items()
    }
    return {"workload": {**params, "k": K}, "schemes": {SCHEME: modes}}


def run_bench(profiles: list[str]) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name) for name in profiles},
    }


def _summary_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        for mode, m in prof["schemes"][SCHEME].items():
            lines.append(
                f"{profile:8} {mode:5} snapshot {m['snapshot_bytes']:7d} B "
                f"in {m['snapshot_seconds'] * 1e3:6.1f} ms, "
                f"restore {m['restore_seconds'] * 1e3:6.1f} ms, "
                f"replay {m['tail_records']:4d} records "
                f"({m['journal_bytes']} B) in "
                f"{m['replay_seconds'] * 1e3:6.1f} ms"
            )
    return lines


def _guard(baseline: dict, doc: dict) -> "GuardReport":
    return compare(
        baseline,
        doc,
        bench=BENCH_NAME,
        counter_metrics=COUNTER_METRICS,
        wall_metrics=WALL_METRICS,
    )


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_persist_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    modes = doc["profiles"]["smoke"]["schemes"][SCHEME]
    # sharding multiplies the per-shard payloads but not the journal:
    # the record stream is the same either way.
    assert modes["s4"]["journal_bytes"] == modes["mono"]["journal_bytes"]
    assert modes["s4"]["tail_records"] == modes["mono"]["tail_records"]
    assert modes["s4"]["final_sk"] == modes["mono"]["final_sk"]
    report = _guard(load_baseline(BASELINE_PATH), doc)
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _summary_lines(doc):
        print(line)

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = _guard(baseline, doc)
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
