"""Exposition: Prometheus text format, JSON snapshots, /metrics server.

``render_prometheus`` emits text-format 0.0.4 (``# HELP``/``# TYPE``
preamble per family, escaped label values, cumulative ``_bucket``
series with a ``+Inf`` bound plus ``_sum``/``_count`` for histograms).
``parse_prometheus`` is the validating inverse used by the tests and
the CI obs-smoke job.  ``MetricsServer`` serves both formats from a
stdlib ``ThreadingHTTPServer`` on a daemon thread.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable

from repro.obs.registry import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import NullRegistry

__all__ = [
    "MetricsServer",
    "json_dump",
    "parse_prometheus",
    "render_prometheus",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...], extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: "MetricsRegistry | NullRegistry") -> str:
    """Render the registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.children():
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for bound, count in zip(child.buckets, cumulative):
                    labels = _render_labels(
                        family.labelnames,
                        labelvalues,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _render_labels(family.labelnames, labelvalues, extra='le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {child.count}")
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{labels} {_format_value(child.total)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                labels = _render_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def json_dump(registry: "MetricsRegistry | NullRegistry") -> dict[str, object]:
    """A plain-dict snapshot of every family (histograms expanded)."""
    metrics: dict[str, object] = {}
    for family in registry.families():
        samples: list[dict[str, object]] = []
        for labelvalues, child in family.children():
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(child, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "buckets": dict(
                            zip(
                                [_format_value(b) for b in child.buckets],
                                child.cumulative(),
                            )
                        ),
                        "sum": child.total,
                        "count": child.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return {"metrics": metrics}


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_VALID_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def _parse_labels(raw: str) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR_RE.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label segment: {raw[pos:]!r}")
        value = match.group("value").encode().decode("unicode_escape")
        pairs.append((match.group("name"), value))
        pos = match.end()
    return tuple(pairs)


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse (and validate) Prometheus text format.

    Returns ``{(sample_name, ((label, value), ...)): value}``.  Raises
    ``ValueError`` on malformed lines, unknown ``# TYPE`` kinds, or
    samples that belong to no declared family — strict enough to act as
    the format check in CI.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    declared: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP line: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in _VALID_KINDS:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name.removesuffix(suffix)
            if stripped != name and declared.get(stripped) == "histogram":
                base = stripped
                break
        if base not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE declaration")
        labels = _parse_labels(match.group("labels") or "")
        key = (name, labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        try:
            samples[key] = _parse_value(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value in {line!r}") from exc
    return samples


class _Handler(BaseHTTPRequestHandler):
    server: "_ObsHTTPServer"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/metrics", "/"):
            body = self.server.render_text().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path == "/metrics.json":
            body = json.dumps(self.server.render_json(), sort_keys=True).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_response(404)
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: object) -> None:
        pass  # scrape traffic must not spam the session's stdout


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: "MetricsRegistry | NullRegistry",
        sync: Callable[[], None] | None,
    ) -> None:
        super().__init__(address, _Handler)
        self._registry = registry
        self._sync = sync

    def render_text(self) -> str:
        if self._sync is not None:
            self._sync()
        return render_prometheus(self._registry)

    def render_json(self) -> dict[str, object]:
        if self._sync is not None:
            self._sync()
        return json_dump(self._registry)


class MetricsServer:
    """A daemon-thread /metrics endpoint over one registry.

    ``port=0`` binds an ephemeral port; read ``.port`` after ``start()``.
    The optional ``sync`` callback runs before each scrape so bridged
    ledger gauges are current at exposition time.
    """

    def __init__(
        self,
        registry: "MetricsRegistry | NullRegistry",
        port: int = 0,
        host: str = "127.0.0.1",
        sync: Callable[[], None] | None = None,
    ) -> None:
        self._registry = registry
        self._requested_port = port
        self.host = host
        self._sync = sync
        self._server: _ObsHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        self._server = _ObsHTTPServer((self.host, self._requested_port), self._registry, self._sync)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="ctup-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("metrics server is not running")
        return f"http://{self.host}:{self.port}/metrics"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
