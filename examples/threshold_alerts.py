"""Threshold monitoring (§VII): every place below a safety floor.

A dispatcher may care less about "the 15 worst places" and more about
"every place whose safety is below -2". This example runs the threshold
variant next to a classic top-k monitor on the same stream and contrasts
the two answers.

Run:  python examples/threshold_alerts.py
"""

from collections import Counter

from repro import CTUPConfig, OptCTUP
from repro.ext import ThresholdCTUP
from repro.roadnet import NetworkMobility, random_network
from repro.workloads import generate_places, record_stream

TAU = -2.0


def main() -> None:
    config = CTUPConfig(k=10, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(6_000, seed=17)
    network = random_network(nodes=100, seed=4)
    mobility = NetworkMobility(
        network, count=70, speed=0.005, report_distance=0.005, seed=6
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 1_500)

    topk = OptCTUP(config, places, units)
    floor = ThresholdCTUP(config, places, units, tau=TAU)
    topk.initialize()
    floor.initialize()

    sizes = []
    for update in stream:
        topk.process(update)
        floor.process(update)
        sizes.append(len(floor.unsafe_places()))

    unsafe = floor.unsafe_places()
    print(
        f"after {len(stream)} updates: {len(unsafe)} places below "
        f"safety {TAU:+.0f} (top-k would have shown exactly {config.k})"
    )
    print(
        f"alert-set size over time: min {min(sizes)}, max {max(sizes)}, "
        f"final {sizes[-1]}"
    )

    by_kind = Counter(record.place.kind for record in unsafe)
    print("\nwhat kind of places are below the floor?")
    for kind, count in by_kind.most_common():
        print(f"  {kind:14s} {count:4d}")

    worst = unsafe[0]
    print(
        f"\nworst offender: {worst.place.kind} #{worst.place_id} "
        f"at safety {worst.safety:+.0f}"
    )
    # the top-k monitor agrees on the most unsafe places.
    assert topk.top_k()[0].safety == worst.safety


if __name__ == "__main__":
    main()
