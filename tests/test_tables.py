"""Tables I and II, checked entry by entry against the paper."""

import pytest

from repro.core.tables import (
    HASH_INSERT,
    HASH_NONE,
    HASH_REMOVE,
    TABLE1,
    table1_delta,
    table2_action,
)
from repro.geometry.relations import CellRelation

N, P, F = (
    CellRelation.NO_INTERSECT,
    CellRelation.PARTIAL,
    CellRelation.FULL,
)


class TestTable1:
    """Table I: lower-bound maintenance in BasicCTUP."""

    @pytest.mark.parametrize(
        "old,new,delta",
        [
            (N, N, 0),  # N -> N/P: 0
            (N, P, 0),
            (N, F, +1),  # N -> F: +
            (P, N, -1),  # P -> N/P: -
            (P, P, -1),
            (P, F, 0),  # P -> F: 0
            (F, N, -1),  # F -> N/P: -
            (F, P, -1),
            (F, F, 0),  # F -> F: 0
        ],
    )
    def test_entry(self, old, new, delta):
        assert table1_delta(old, new) == delta

    def test_table_is_total(self):
        assert set(TABLE1) == {(a, b) for a in (N, P, F) for b in (N, P, F)}


class TestTable2:
    """Table II: lower-bound maintenance in OptCTUP (with DecHash)."""

    @pytest.mark.parametrize("in_hash", [True, False])
    @pytest.mark.parametrize(
        "old,new",
        [(N, N), (N, P), (F, F)],
    )
    def test_unchanged_cases(self, old, new, in_hash):
        assert table2_action(old, new, in_hash) == (0, HASH_NONE)

    @pytest.mark.parametrize("in_hash", [True, False])
    def test_n_to_f_increases_and_removes(self, in_hash):
        # "N -> F: +, h-"
        assert table2_action(N, F, in_hash) == (+1, HASH_REMOVE)

    @pytest.mark.parametrize("in_hash", [True, False])
    @pytest.mark.parametrize("new", [N, P])
    def test_f_to_np_decreases_and_inserts(self, new, in_hash):
        # "F -> N/P: -, h+"
        assert table2_action(F, new, in_hash) == (-1, HASH_INSERT)

    @pytest.mark.parametrize("new", [N, P])
    def test_p_to_np_without_pair_decreases(self, new):
        # "P -> N/P: -, h+ (otherwise)"
        assert table2_action(P, new, False) == (-1, HASH_INSERT)

    @pytest.mark.parametrize("new", [N, P])
    def test_p_to_np_with_pair_is_suppressed(self, new):
        # "P -> N/P: 0 (if in hash)" — the heart of DOO.
        assert table2_action(P, new, True) == (0, HASH_NONE)

    def test_p_to_f_with_pair_increases_and_removes(self):
        # "P -> F: +, h- (if in hash)"
        assert table2_action(P, F, True) == (+1, HASH_REMOVE)

    def test_p_to_f_without_pair_unchanged(self):
        # "P -> F: 0 (otherwise)"
        assert table2_action(P, F, False) == (0, HASH_NONE)

    def test_every_combination_defined(self):
        for old in (N, P, F):
            for new in (N, P, F):
                for in_hash in (True, False):
                    delta, action = table2_action(old, new, in_hash)
                    assert delta in (-1, 0, +1)
                    assert action in (HASH_NONE, HASH_INSERT, HASH_REMOVE)

    def test_table2_never_decreases_more_than_table1(self):
        """DOO only suppresses decreases, it never adds new ones."""
        for old in (N, P, F):
            for new in (N, P, F):
                for in_hash in (True, False):
                    delta2, _ = table2_action(old, new, in_hash)
                    delta1 = table1_delta(old, new)
                    assert delta2 >= delta1
