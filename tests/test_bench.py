"""The bench harness: workload assembly, runs, reporting, sweeps."""

import pytest

from repro.bench import (
    MONITOR_FACTORIES,
    SweepPoint,
    build_workload,
    format_table,
    run_monitor,
    sweep,
)
from repro.core import CTUPConfig


@pytest.fixture(scope="module")
def tiny_workload():
    return build_workload(
        n_units=20, n_places=400, stream_length=60, seed=1
    )


@pytest.fixture
def tiny_config():
    return CTUPConfig(k=4, delta=2, protection_range=0.1, granularity=6)


class TestBuildWorkload:
    def test_sizes(self, tiny_workload):
        assert len(tiny_workload.places) == 400
        assert len(tiny_workload.units) == 20
        assert len(tiny_workload.stream) == 60

    def test_deterministic(self):
        a = build_workload(n_units=5, n_places=50, stream_length=20, seed=3)
        b = build_workload(n_units=5, n_places=50, stream_length=20, seed=3)
        assert list(a.stream) == list(b.stream)
        assert a.places == b.places

    def test_network_families(self):
        for network in ("grid", "radial", "random"):
            wl = build_workload(
                n_units=5, n_places=50, stream_length=5, seed=1, network=network
            )
            assert len(wl.stream) == 5

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            build_workload(network="hexagonal")

    def test_prefix(self, tiny_workload):
        assert len(tiny_workload.prefix(10).stream) == 10


class TestRunMonitor:
    @pytest.mark.parametrize("algorithm", sorted(MONITOR_FACTORIES))
    def test_runs_and_validates(self, algorithm, tiny_workload, tiny_config):
        result = run_monitor(algorithm, tiny_config, tiny_workload)
        assert result.validated
        assert result.n_updates == 60
        assert result.wall_seconds > 0
        assert result.init.places_loaded > 0

    def test_unknown_algorithm(self, tiny_workload, tiny_config):
        with pytest.raises(ValueError):
            run_monitor("magic", tiny_config, tiny_workload)

    def test_updates_cap(self, tiny_workload, tiny_config):
        result = run_monitor("opt", tiny_config, tiny_workload, updates=10)
        assert result.n_updates == 10

    def test_update_counters_exclude_init(self, tiny_workload, tiny_config):
        result = run_monitor("opt", tiny_config, tiny_workload)
        assert (
            result.update_counters.places_loaded
            <= result.counters.places_loaded
        )
        assert result.update_counters.updates_processed == 60

    def test_derived_metrics(self, tiny_workload, tiny_config):
        result = run_monitor("opt", tiny_config, tiny_workload)
        assert result.avg_update_ms == pytest.approx(
            result.wall_seconds / 60 * 1e3
        )
        assert result.cells_per_update >= 0

    def test_custom_factory(self, tiny_workload, tiny_config):
        from repro.core import OptCTUP

        result = run_monitor(
            "opt-nodoo",
            tiny_config.replace(use_doo=False),
            tiny_workload,
            factory=OptCTUP,
        )
        assert result.algorithm == "opt-nodoo"


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.0], ["long-name", 123456.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_values(self):
        from repro.bench.reporting import format_value

        assert format_value(True) == "yes"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "-"
        assert format_value(0.1234) == "0.123"
        assert format_value(1234567.0) == "1,234,567"
        assert format_value(12.345) == "12.3"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestSweep:
    def test_sweep_calls_every_point(self, tiny_workload, tiny_config):
        seen = []

        def point(x):
            seen.append(x)
            return {
                "opt": run_monitor(
                    "opt", tiny_config.replace(k=x), tiny_workload, updates=5
                )
            }

        points = sweep([2, 4], point)
        assert seen == [2, 4]
        assert all(isinstance(p, SweepPoint) for p in points)
        assert points[0].avg_update_ms("opt") >= 0
