"""Property test: the monitors' invariants survive arbitrary streams.

This is the heaviest correctness hammer in the suite: hypothesis draws a
random world (places, fleet, configuration) and a random walk, and the
public auditor re-derives ground truth at checkpoints along the stream.
Any unsound bound decrement, stale maintained safety or missed top-k
place anywhere in either scheme fails here with a replayable seed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BasicCTUP, CTUPConfig, OptCTUP
from repro.core.audit import audit_monitor
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 100_000),
    k=st.integers(1, 10),
    delta=st.integers(0, 8),
    granularity=st.integers(2, 9),
    use_doo=st.booleans(),
    step=st.floats(0.005, 0.08),
)
def test_invariants_hold_under_random_streams(
    seed, k, delta, granularity, use_doo, step
):
    config = CTUPConfig(
        k=k,
        delta=delta,
        protection_range=0.12,
        granularity=granularity,
        use_doo=use_doo,
    )
    places = generate_places(250, seed=seed)
    units = generate_units(10, config.protection_range, seed=seed + 1)
    stream = record_stream(
        RandomWalkMobility(units, step=step, seed=seed + 2), 60
    )
    monitors = [
        BasicCTUP(config, places, units),
        OptCTUP(config, places, units),
    ]
    for monitor in monitors:
        monitor.initialize()
        problems = audit_monitor(monitor)
        assert not problems, (monitor.name, "init", problems[:3])
    for i, update in enumerate(stream):
        for monitor in monitors:
            monitor.process(update)
            if i % 15 == 14 or i == len(stream) - 1:
                problems = audit_monitor(monitor)
                assert not problems, (monitor.name, i, problems[:3])
