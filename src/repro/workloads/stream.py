"""Update streams and mobility models.

A *mobility model* owns the fleet's true movement and yields
:class:`~repro.model.LocationUpdate` messages; an :class:`UpdateStream`
is a recorded, replayable sequence of them. Recording once and replaying
into every monitor keeps comparisons exact: all schemes see byte-for-byte
the same stream.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence

from repro.geometry import Point, Rect
from repro.model import LocationUpdate, Unit


class Mobility(Protocol):
    """Anything that can emit location updates for a fleet."""

    def updates(self, count: int) -> Iterator[LocationUpdate]:
        """Yield the next ``count`` location updates."""
        ...  # pragma: no cover - protocol


class RandomWalkMobility:
    """A simple bounded random walk (test workload).

    Each step picks one unit uniformly and displaces it by a gaussian
    step, reflecting at the space boundary. Cheap and structure-free;
    the road-network model in :mod:`repro.roadnet` is the realistic one.
    """

    def __init__(
        self,
        units: Sequence[Unit],
        step: float = 0.02,
        seed: int = 0,
        space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self._positions = {u.unit_id: u.location for u in units}
        self._step = step
        self._rng = random.Random(seed)
        self._space = space
        self._time = 0.0

    def updates(self, count: int) -> Iterator[LocationUpdate]:
        ids = sorted(self._positions)
        for _ in range(count):
            unit_id = self._rng.choice(ids)
            old = self._positions[unit_id]
            new = Point(
                _reflect(
                    old.x + self._rng.gauss(0.0, self._step),
                    self._space.xmin,
                    self._space.xmax,
                ),
                _reflect(
                    old.y + self._rng.gauss(0.0, self._step),
                    self._space.ymin,
                    self._space.ymax,
                ),
            )
            self._positions[unit_id] = new
            self._time += 1.0
            yield LocationUpdate(
                unit_id=unit_id,
                old_location=old,
                new_location=new,
                timestamp=self._time,
            )


def _reflect(value: float, low: float, high: float) -> float:
    """Reflect ``value`` into ``[low, high]`` (bounded walk)."""
    if high <= low:
        raise ValueError("empty interval")
    span = high - low
    value = (value - low) % (2 * span)
    if value > span:
        value = 2 * span - value
    return low + value


@dataclass(frozen=True)
class UpdateStream:
    """An immutable, replayable sequence of location updates."""

    updates: tuple[LocationUpdate, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[LocationUpdate]:
        return iter(self.updates)

    def __getitem__(self, index: int) -> LocationUpdate:
        return self.updates[index]

    def prefix(self, count: int) -> "UpdateStream":
        """The first ``count`` updates as a new stream."""
        return UpdateStream(self.updates[:count])

    def to_jsonl(self) -> str:
        """Serialize (one JSON object per line) for archival/replay."""
        lines = []
        for u in self.updates:
            lines.append(
                json.dumps(
                    {
                        "unit": u.unit_id,
                        "old": [u.old_location.x, u.old_location.y],
                        "new": [u.new_location.x, u.new_location.y],
                        "t": u.timestamp,
                    }
                )
            )
        return "\n".join(lines)

    def save(self, path) -> None:
        """Write the stream to a JSONL file."""
        from pathlib import Path

        Path(path).write_text(self.to_jsonl() + ("\n" if len(self) else ""))

    @classmethod
    def load(cls, path) -> "UpdateStream":
        """Read a stream previously written with :meth:`save`."""
        from pathlib import Path

        return cls.from_jsonl(Path(path).read_text())

    @classmethod
    def from_jsonl(cls, text: str) -> "UpdateStream":
        """Inverse of :meth:`to_jsonl`."""
        updates = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            updates.append(
                LocationUpdate(
                    unit_id=raw["unit"],
                    old_location=Point(*raw["old"]),
                    new_location=Point(*raw["new"]),
                    timestamp=raw["t"],
                )
            )
        return cls(tuple(updates))


def record_stream(mobility: Mobility, count: int) -> UpdateStream:
    """Materialise ``count`` updates from a mobility model."""
    return UpdateStream(tuple(mobility.updates(count)))
