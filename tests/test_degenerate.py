"""Degenerate configurations the schemes must survive.

Single-cell grids, every place stacked in one cell, fewer places than
k, fleets that never protect anything — each exercises boundary logic
(infinite SK, empty maintained tables, all-N classifications) that the
realistic workloads rarely hit.
"""

import math

import pytest

from repro.api import SCHEMES as REGISTERED_SCHEMES
from repro.api import ShardSpec, make_monitor
from repro.control import KChanged
from repro.core import BasicCTUP, CTUPConfig, NaiveCTUP, OptCTUP
from repro.core.audit import audit_monitor
from repro.core.topk import tie_key
from repro.geometry import Point, Rect
from repro.model import Place, Unit
from repro.validate import Oracle
from repro.workloads import RandomWalkMobility, generate_places, record_stream

SCHEMES = [NaiveCTUP, BasicCTUP, OptCTUP]


def drive(config, places, units, stream, audit=True):
    oracle = Oracle(places, units)
    monitors = [cls(config, places, units) for cls in SCHEMES]
    for monitor in monitors:
        monitor.initialize()
    for update in stream:
        oracle.apply(update)
        for monitor in monitors:
            monitor.process(update)
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (monitor.name, verdict.problems[:3])
    if audit:
        for monitor in monitors[1:]:  # naive keeps no auditable state
            assert audit_monitor(monitor) == [], monitor.name
    return monitors


@pytest.fixture
def fleet():
    units = [
        Unit(0, Point(0.2, 0.2), 0.1),
        Unit(1, Point(0.8, 0.8), 0.1),
        Unit(2, Point(0.5, 0.5), 0.1),
    ]
    return units


def walk(units, seed=1, n=60):
    return record_stream(RandomWalkMobility(units, step=0.05, seed=seed), n)


class TestSingleCellGrid:
    def test_granularity_one(self, fleet):
        config = CTUPConfig(k=3, delta=2, protection_range=0.1, granularity=1)
        places = generate_places(100, seed=1)
        drive(config, places, fleet, walk(fleet))


class TestStackedPlaces:
    def test_all_places_in_one_cell(self, fleet):
        config = CTUPConfig(k=4, delta=2, protection_range=0.1, granularity=8)
        places = [
            Place(i, Point(0.33 + i * 1e-4, 0.61), i % 5) for i in range(80)
        ]
        drive(config, places, fleet, walk(fleet, seed=2))

    def test_coincident_places(self, fleet):
        config = CTUPConfig(k=3, delta=1, protection_range=0.1, granularity=8)
        places = [Place(i, Point(0.5, 0.5), i % 4) for i in range(20)]
        drive(config, places, fleet, walk(fleet, seed=3))


class TestFewerPlacesThanK:
    def test_sk_stays_infinite(self, fleet):
        config = CTUPConfig(k=50, delta=2, protection_range=0.1, granularity=4)
        places = generate_places(8, seed=2)
        monitors = drive(config, places, fleet, walk(fleet, seed=4))
        for monitor in monitors:
            assert monitor.sk() == math.inf
            assert len(monitor.top_k()) == 8

    def test_opt_maintains_everything(self, fleet):
        config = CTUPConfig(k=50, delta=2, protection_range=0.1, granularity=4)
        places = generate_places(8, seed=2)
        monitor = OptCTUP(config, places, fleet)
        monitor.initialize()
        # SK = inf means every cell's bound is "below SK": all maintained.
        assert len(monitor.maintained) == 8


class TestIrrelevantFleet:
    def test_units_protect_nothing(self):
        # places in one corner, the fleet walking in the other.
        config = CTUPConfig(k=3, delta=2, protection_range=0.05, granularity=8)
        places = [
            Place(i, Point(0.05 + (i % 5) * 0.01, 0.05 + (i // 5) * 0.01), 2)
            for i in range(25)
        ]
        units = [Unit(0, Point(0.9, 0.9), 0.05), Unit(1, Point(0.95, 0.9), 0.05)]
        stream = record_stream(
            RandomWalkMobility(units, step=0.01, seed=5), 40
        )
        monitors = drive(config, places, units, stream)
        # every place keeps safety exactly -RP = -2 throughout.
        for monitor in monitors:
            assert monitor.sk() == -2.0


class TestStationaryReports:
    def test_zero_displacement_updates(self, fleet):
        """Units reporting without moving (the P->P drawback trigger)."""
        from repro.model import LocationUpdate

        config = CTUPConfig(k=3, delta=2, protection_range=0.1, granularity=8)
        places = generate_places(200, seed=3)
        oracle = Oracle(places, fleet)
        monitors = [cls(config, places, fleet) for cls in SCHEMES]
        for monitor in monitors:
            monitor.initialize()
        for _ in range(25):
            for unit in fleet:
                update = LocationUpdate(
                    unit.unit_id, unit.location, unit.location
                )
                oracle.apply(update)
                for monitor in monitors:
                    monitor.process(update)
        for monitor in monitors:
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (monitor.name, verdict.problems[:3])
        # DOO suppresses the repeated no-move decrements for opt...
        opt = monitors[2]
        basic = monitors[1]
        assert opt.counters.lb_decrements <= basic.counters.lb_decrements


def _build(scheme, config, places, units, shards=0):
    monitor = make_monitor(
        scheme,
        places=places,
        units=units,
        config=config,
        shard=ShardSpec(shards=shards) if shards else None,
    )
    monitor.initialize()
    return monitor


def _tied_world():
    """A straddle world: six coincident places share the lowest safety.

    The tie group (ids 100..105, identical location and RP) straddles
    any ``k`` between 1 and 5 — the canonical ``(safety, id)`` key is
    the only thing that decides which of them make the result.
    """
    places = [Place(100 + i, Point(0.52, 0.52), 5) for i in range(6)]
    places += [Place(i, Point(0.1 + 0.03 * i, 0.85), i % 3) for i in range(10)]
    units = [
        Unit(0, Point(0.2, 0.2), 0.1),
        Unit(1, Point(0.75, 0.75), 0.1),
    ]
    return places, units


class TestDegenerateK:
    """k == 0, k > |P|, and k shrinking below the straddle group, for
    every registered scheme, unsharded and sharded."""

    @pytest.mark.parametrize("scheme", sorted(REGISTERED_SCHEMES))
    @pytest.mark.parametrize("shards", [0, 4])
    def test_k_zero(self, fleet, scheme, shards):
        config = CTUPConfig(k=0, delta=2, protection_range=0.1, granularity=8)
        places = generate_places(120, seed=6)
        monitor = _build(scheme, config, places, fleet, shards)
        assert monitor.top_k() == []
        assert monitor.sk() == -math.inf
        for update in walk(fleet, seed=7, n=30):
            monitor.process(update)
            assert monitor.top_k() == []
            assert monitor.sk() == -math.inf

    @pytest.mark.parametrize("scheme", sorted(REGISTERED_SCHEMES))
    @pytest.mark.parametrize("shards", [0, 4])
    def test_k_exceeds_place_count(self, fleet, scheme, shards):
        config = CTUPConfig(k=60, delta=2, protection_range=0.1, granularity=6)
        places = generate_places(20, seed=8)
        monitor = _build(scheme, config, places, fleet, shards)
        oracle = Oracle(places, fleet)
        for update in walk(fleet, seed=9, n=30):
            oracle.apply(update)
            monitor.process(update)
            assert monitor.sk() == math.inf
            result = monitor.top_k()
            assert len(result) == 20
            verdict = oracle.validate(result, config.k)
            assert verdict.ok, (scheme, shards, verdict.problems[:3])

    @pytest.mark.parametrize("scheme", sorted(REGISTERED_SCHEMES))
    @pytest.mark.parametrize("shards", [0, 4])
    def test_k_shrinks_below_straddle_group(self, scheme, shards):
        """Shrinking k inside a tie group keeps the canonical prefix."""
        places, units = _tied_world()
        config = CTUPConfig(k=8, delta=1, protection_range=0.1, granularity=8)
        monitor = _build(scheme, config, places, units, shards)
        for update in walk(units, seed=10, n=20):
            monitor.process(update)
        monitor.apply_control(KChanged(3))
        fresh = _build(
            scheme, config.replace(k=3), places, units, shards
        )
        for update in walk(units, seed=10, n=20):
            fresh.process(update)
        got = [(r.place_id, r.safety) for r in monitor.top_k()]
        want = [(r.place_id, r.safety) for r in fresh.top_k()]
        assert got == want
        assert monitor.sk() == fresh.sk()
        assert len(got) == 3


class TestStraddleTieBreak:
    """All result surfaces break safety ties by ascending place id —
    through the single ``core.topk.tie_key`` comparator, so the core
    schemes, the sharded merger and the ext/ schemes cannot drift."""

    def test_core_and_sharded_agree_on_tie_order(self):
        places, units = _tied_world()
        config = CTUPConfig(k=3, delta=1, protection_range=0.1, granularity=8)
        results = {}
        for scheme in sorted(REGISTERED_SCHEMES):
            for shards in (0, 4):
                monitor = _build(scheme, config, places, units, shards)
                for update in walk(units, seed=11, n=20):
                    monitor.process(update)
                results[(scheme, shards)] = [
                    (r.place_id, r.safety) for r in monitor.top_k()
                ]
        reference = results[("naive", 0)]
        assert reference == sorted(reference, key=lambda t: tie_key(t[1], t[0]))
        # the straddle group (ids 100..105) is cut by ascending id.
        tied = [pid for pid, _ in reference if pid >= 100]
        assert tied == sorted(tied)
        for key, got in results.items():
            assert got == reference, key

    def test_threshold_orders_by_tie_key(self):
        from repro.ext import ThresholdCTUP

        places, units = _tied_world()
        config = CTUPConfig(k=3, delta=1, protection_range=0.1, granularity=8)
        monitor = ThresholdCTUP(config, places, units, tau=10.0)
        monitor.initialize()
        for update in walk(units, seed=12, n=20):
            monitor.process(update)
        records = monitor.unsafe_places()
        assert [(r.place_id, r.safety) for r in records] == sorted(
            ((r.place_id, r.safety) for r in records),
            key=lambda t: tie_key(t[1], t[0]),
        )

    def test_extent_orders_by_tie_key(self):
        from repro.ext import ExtentCTUP, ExtentPlace

        config = CTUPConfig(k=3, delta=1, protection_range=0.1, granularity=8)
        rect = Rect(0.5, 0.5, 0.54, 0.54)
        places = [ExtentPlace(100 + i, rect, 5) for i in range(6)]
        places += [
            ExtentPlace(i, Rect(0.1, 0.8, 0.12, 0.82), 1) for i in range(2)
        ]
        units = [Unit(0, Point(0.2, 0.2), 0.1), Unit(1, Point(0.7, 0.7), 0.1)]
        monitor = ExtentCTUP(config, places, units)
        monitor.initialize()
        result = [(r.place_id, r.safety) for r in monitor.top_k()]
        assert result == sorted(result, key=lambda t: tie_key(t[1], t[0]))
        tied = [pid for pid, _ in result if pid >= 100]
        assert tied == sorted(tied)


class TestStreamFiles:
    def test_save_and_load_roundtrip(self, tmp_path, fleet):
        stream = walk(fleet, seed=9, n=30)
        path = tmp_path / "stream.jsonl"
        stream.save(path)
        assert path.exists()
        from repro.workloads.stream import UpdateStream

        assert UpdateStream.load(path) == stream

    def test_save_empty_stream(self, tmp_path):
        from repro.workloads.stream import UpdateStream

        path = tmp_path / "empty.jsonl"
        UpdateStream().save(path)
        assert UpdateStream.load(path) == UpdateStream()
