"""Server-side tracking of the protecting units.

The server keeps the most recently reported location of every unit
(§II-A). :class:`UnitIndex` owns that state for one monitor instance and
provides the vectorised actual-protection kernel used whenever a cell's
places must be (re)evaluated against *all* units.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.geometry import Point
from repro.model import LocationUpdate, Unit


class UnitIndex:
    """Positions of all units, tracked per monitor.

    All units share one protection range ``R`` (as in the paper); the
    constructor rejects mixed ranges because the vectorised kernels and
    the per-cell bound maintenance both assume a single radius.

    The index copies the units it is given, so several monitors built
    from the same initial fleet do not share mutable state.
    """

    def __init__(self, units: Iterable[Unit]) -> None:
        units = list(units)
        if not units:
            raise ValueError("at least one protecting unit is required")
        ranges = {u.protection_range for u in units}
        if len(ranges) != 1:
            raise ValueError(f"units must share one protection range, got {ranges}")
        self.protection_range = ranges.pop()
        self._units: dict[int, Unit] = {}
        for u in units:
            if u.unit_id in self._units:
                raise ValueError(f"duplicate unit id {u.unit_id}")
            self._units[u.unit_id] = Unit(u.unit_id, u.location, u.protection_range)
        self._order = sorted(self._units)
        self._row_of = {uid: row for row, uid in enumerate(self._order)}
        n = len(self._order)
        self._xs = np.empty(n, dtype=np.float64)
        self._ys = np.empty(n, dtype=np.float64)
        for uid, row in self._row_of.items():
            loc = self._units[uid].location
            self._xs[row] = loc.x
            self._ys[row] = loc.y

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[Unit]:
        for uid in self._order:
            yield self._units[uid]

    def __contains__(self, unit_id: int) -> bool:
        return unit_id in self._units

    def location_of(self, unit_id: int) -> Point:
        """The most recently reported location of ``unit_id``."""
        return self._units[unit_id].location

    def apply(self, update: LocationUpdate) -> Point:
        """Record a location update; returns the *tracked* old location.

        The tracked location is authoritative: if the stream's
        ``old_location`` disagrees with it the server state would be
        inconsistent, so a mismatch raises.
        """
        unit = self._units.get(update.unit_id)
        if unit is None:
            raise KeyError(f"unknown unit {update.unit_id}")
        old = unit.location
        if old.squared_distance_to(update.old_location) > 1e-18:
            raise ValueError(
                f"update for unit {update.unit_id} carries old location "
                f"{update.old_location} but the server tracks {old}"
            )
        unit.location = update.new_location
        row = self._row_of[update.unit_id]
        self._xs[row] = update.new_location.x
        self._ys[row] = update.new_location.y
        return old

    def ap_counts(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Actual protection ``AP`` of each query point.

        Counts, for every ``(xs[i], ys[i])``, the units whose closed
        protection disk contains the point. Vectorised over both points
        and units; memory is bounded by chunking the point axis.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        r2 = self.protection_range * self.protection_range
        out = np.empty(len(xs), dtype=np.int64)
        # ~4M matrix cells per chunk keeps temporaries small.
        chunk = max(1, 4_000_000 // max(len(self._xs), 1))
        for start in range(0, len(xs), chunk):
            end = min(start + chunk, len(xs))
            dx = xs[start:end, None] - self._xs[None, :]
            dy = ys[start:end, None] - self._ys[None, :]
            out[start:end] = np.count_nonzero(dx * dx + dy * dy <= r2, axis=1)
        return out

    def ap_counts_near(
        self, xs: np.ndarray, ys: np.ndarray, rect
    ) -> tuple[np.ndarray, int]:
        """AP of points inside ``rect``, using only reachable units.

        Implements the paper's "derive the protecting units whose
        protecting regions intersect the cell" (§III-B/§IV-D): a unit
        whose disk cannot reach into the rectangle cannot protect any
        place in it, so it is excluded before the distance kernel runs.
        Returns the counts and the number of units actually compared
        (for the work counters). Callers must only pass points inside
        ``rect``.
        """
        r = self.protection_range
        dx = np.maximum(rect.xmin - self._xs, 0.0)
        dx = np.maximum(dx, self._xs - rect.xmax)
        dy = np.maximum(rect.ymin - self._ys, 0.0)
        dy = np.maximum(dy, self._ys - rect.ymax)
        reachable = dx * dx + dy * dy <= r * r
        ux = self._xs[reachable]
        uy = self._ys[reachable]
        n_units = len(ux)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if n_units == 0:
            return np.zeros(len(xs), dtype=np.int64), 0
        ddx = xs[:, None] - ux[None, :]
        ddy = ys[:, None] - uy[None, :]
        counts = np.count_nonzero(ddx * ddx + ddy * ddy <= r * r, axis=1)
        return counts.astype(np.int64), n_units

    def weighted_protection_near(
        self, xs: np.ndarray, ys: np.ndarray, rect, weight_of_distance
    ) -> tuple[np.ndarray, int]:
        """Decaying-protection sums (§VII extension).

        Like :meth:`ap_counts_near`, but instead of counting units inside
        the disk it sums ``weight_of_distance(d)`` over the reachable
        units, where ``weight_of_distance`` maps a numpy distance array
        to a weight array (zero beyond the protection range).
        """
        r = self.protection_range
        dx = np.maximum(rect.xmin - self._xs, 0.0)
        dx = np.maximum(dx, self._xs - rect.xmax)
        dy = np.maximum(rect.ymin - self._ys, 0.0)
        dy = np.maximum(dy, self._ys - rect.ymax)
        reachable = dx * dx + dy * dy <= r * r
        ux = self._xs[reachable]
        uy = self._ys[reachable]
        n_units = len(ux)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if n_units == 0:
            return np.zeros(len(xs), dtype=np.float64), 0
        ddx = xs[:, None] - ux[None, :]
        ddy = ys[:, None] - uy[None, :]
        distances = np.sqrt(ddx * ddx + ddy * ddy)
        return weight_of_distance(distances).sum(axis=1), n_units

    def ap_of_point(self, p: Point) -> int:
        """Actual protection of a single point."""
        dx = self._xs - p.x
        dy = self._ys - p.y
        r2 = self.protection_range * self.protection_range
        return int(np.count_nonzero(dx * dx + dy * dy <= r2))

    def snapshot_positions(self) -> np.ndarray:
        """An ``(n, 2)`` copy of all unit positions (unit-id order)."""
        return np.stack([self._xs, self._ys], axis=1).copy()
