"""Predictive patrolling (§VII): where will it be unsafe in a minute?

Feeds one live stream into a CTUP monitor (the present) and a
:class:`PredictiveMonitor` (the future), then compares the current
top-k against the predicted top-k at several horizons. Places that
appear only in the predicted set are where a dispatcher should move
cars *before* coverage is lost.

Run:  python examples/predictive_patrol.py
"""

from repro import CTUPConfig, OptCTUP
from repro.bench.reporting import format_table
from repro.ext import PredictiveMonitor
from repro.roadnet import NetworkMobility, grid_network
from repro.workloads import generate_places, record_stream


def main() -> None:
    config = CTUPConfig(k=8, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(6_000, seed=33)
    network = grid_network(rows=10, cols=10, seed=8)
    mobility = NetworkMobility(
        network, count=60, speed=0.006, report_distance=0.006, seed=15
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 1_200)

    live = OptCTUP(config, places, units)
    live.initialize()
    crystal_ball = PredictiveMonitor(places, units)

    for update in stream:
        live.process(update)
        crystal_ball.observe(update)

    now_ids = set(live.topk_ids())
    print(f"current top-{config.k}: {sorted(now_ids)} (SK {live.sk():+.0f})\n")

    rows = []
    for horizon in (2.0, 5.0, 10.0):
        predicted = crystal_ball.predict_top_k(config.k, horizon=horizon)
        predicted_ids = {p.place_id for p in predicted}
        rows.append(
            [
                horizon,
                predicted[0].predicted_safety,
                len(predicted_ids & now_ids),
                ", ".join(str(pid) for pid in sorted(predicted_ids - now_ids)[:5])
                or "-",
            ]
        )
    print(
        format_table(
            ["horizon", "predicted worst safety", "overlap with now", "new trouble spots"],
            rows,
            title="velocity-extrapolated forecasts",
        )
    )

    print(
        "\nplaces under 'new trouble spots' are where coverage is about "
        "to lapse — move cars there before it does."
    )


if __name__ == "__main__":
    main()
