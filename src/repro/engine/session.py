"""The monitoring-session facade.

``sim.py``, the examples, the persistence demo and the bench timeline
all used to hand-roll the same plumbing: initialize the monitor, track
result changes, maybe batch the ingest, maybe audit periodically.
:class:`MonitorSession` wires those layers once, around **any** scheme:

>>> session = MonitorSession(monitor, batch_size=32, audit_every=500)
>>> session.start()                 # InitReport (None if restored)
>>> for update in stream:
...     session.feed(update)
>>> session.flush()                 # drain a partial burst
>>> session.monitor.top_k()

Instrumentation attaches through :class:`~repro.engine.hooks.MonitorHooks`
objects rather than by editing the loop.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.audit import audit_monitor
from repro.core.batch import BatchProcessor
from repro.core.events import ChangeTracker
from repro.core.metrics import InitReport, UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.engine.hooks import HookList, MonitorHooks
from repro.model import LocationUpdate


class MonitorSession:
    """A monitor plus batching, change tracking, audits and hooks."""

    def __init__(
        self,
        monitor: CTUPMonitor,
        *,
        batch_size: int = 0,
        audit_every: int = 0,
        hooks: Sequence[MonitorHooks] = (),
        track_changes: bool = True,
    ) -> None:
        """``batch_size`` > 0 buffers updates and flushes them through
        the phase API as exact bursts; 0 processes one by one.
        ``audit_every`` > 0 runs the invariant auditor every that many
        updates (it costs a brute-force pass — useful in soak tests,
        off by default). ``track_changes=False`` skips the per-update
        result diffing entirely — for measurement loops (the bench
        harness) where reading ``top_k()`` after every update would
        perturb the I/O counters being measured."""
        if batch_size < 0:
            raise ValueError("batch_size cannot be negative")
        if audit_every < 0:
            raise ValueError("audit_every cannot be negative")
        self.monitor = monitor
        self.batch_size = batch_size
        self.audit_every = audit_every
        self.track_changes = track_changes
        self.tracker = ChangeTracker(monitor)
        self.hooks = HookList(hooks)
        self.audit_problems: list[str] = []
        self.updates_processed = 0
        self.init_report: InitReport | None = None
        self._batcher = BatchProcessor(monitor) if batch_size else None
        self._pending: list[LocationUpdate] = []
        self._started = False

    # -- wiring -----------------------------------------------------------

    def add_hook(self, hook: MonitorHooks) -> None:
        """Attach an instrumentation hook (fires in registration order)."""
        self.hooks.add(hook)

    @property
    def started(self) -> bool:
        """Whether ``start()`` has run."""
        return self._started

    @property
    def batcher(self) -> BatchProcessor | None:
        """The burst processor (``None`` in single-update mode) — its
        ``batches_processed`` / ``updates_processed`` counters are the
        batching diagnostics."""
        return self._batcher

    # -- lifecycle --------------------------------------------------------

    def start(self) -> InitReport | None:
        """Initialize the monitor (or adopt an already-running one).

        Returns the :class:`InitReport`, or ``None`` when the monitor
        was already initialized (e.g. restored from a checkpoint) — the
        tracker is then primed on the current result instead.
        """
        if self._started:
            raise RuntimeError("session already started")
        if self.monitor.initialized:
            if self.track_changes:
                self.tracker.prime()
        elif self.track_changes:
            self.init_report = self.tracker.initialize()
        else:
            self.init_report = self.monitor.initialize()
        self._started = True
        return self.init_report

    def feed(self, update: LocationUpdate) -> UpdateReport | None:
        """Ingest one update.

        In single mode, processes it and returns its report. In batch
        mode, buffers it and returns the burst report when the buffer
        reaches ``batch_size`` (``None`` otherwise).
        """
        if not self._started:
            self.start()
        self.hooks.on_update_start(update)
        if self._batcher is not None:
            self._pending.append(update)
            if len(self._pending) >= self.batch_size:
                return self.flush()
            return None
        report = self.monitor.process(update)
        self._complete([update], report, batched=False)
        return report

    def flush(self) -> UpdateReport | None:
        """Process any buffered updates now (no-op in single mode)."""
        if self._batcher is None or not self._pending:
            return None
        batch, self._pending = self._pending, []
        report = self._batcher.process_batch(batch)
        self._complete(batch, report, batched=True)
        return report

    def run(self, updates: Iterable[LocationUpdate]) -> int:
        """Feed a whole stream (plus a final flush); returns the count."""
        count = 0
        for update in updates:
            self.feed(update)
            count += 1
        self.flush()
        return count

    # -- internals --------------------------------------------------------

    def _complete(
        self,
        updates: list[LocationUpdate],
        report: UpdateReport,
        batched: bool,
    ) -> None:
        self.hooks.on_refresh(report.cells_accessed)
        for update in updates:
            self.hooks.on_update_end(update, report)
        if batched:
            self.hooks.on_batch_flush(updates, report)
        if self.track_changes:
            change = self.tracker.observe(updates[-1].timestamp)
            if change is not None:
                self.hooks.on_topk_change(change)
        before = self.updates_processed
        self.updates_processed += len(updates)
        if self.audit_every and (
            self.updates_processed // self.audit_every
            > before // self.audit_every
        ):
            self.audit_problems.extend(audit_monitor(self.monitor))
