"""End-to-end soak: every server feature on one long realistic stream.

One road-network workload drives, simultaneously:

* all three core monitors (cross-validated against each other and the
  oracle at checkpoints),
* a batched OptCTUP,
* an adaptive-Δ OptCTUP,
* a multi-query server,
* a threshold monitor,
* a change tracker with history,

with the invariant auditor run at intervals on the grid schemes. If any
interaction between the features breaks an invariant or a result, this
is where it surfaces.
"""

import pytest

from repro.bench import build_workload
from repro.core import (
    AdaptiveDeltaController,
    BasicCTUP,
    BatchProcessor,
    ChangeTracker,
    CTUPConfig,
    MultiQueryCTUP,
    NaiveCTUP,
    OptCTUP,
    TopKHistory,
    audit_monitor,
)
from repro.ext import ThresholdCTUP
from repro.validate import Oracle

CHECK_EVERY = 60


@pytest.mark.parametrize("seed", [0, 7])
def test_full_system_soak(seed):
    workload = build_workload(
        n_units=40, n_places=2_000, stream_length=360, seed=seed
    )
    config = CTUPConfig(k=8, delta=4, protection_range=0.1, granularity=8)
    oracle = Oracle(workload.places, workload.units)

    naive = NaiveCTUP(config, workload.places, workload.units)
    basic = BasicCTUP(config, workload.places, workload.units)
    opt = OptCTUP(config, workload.places, workload.units)
    batched = BatchProcessor(
        OptCTUP(config, workload.places, workload.units)
    )
    adaptive = AdaptiveDeltaController(
        OptCTUP(config, workload.places, workload.units),
        window=50,
        access_target=0.2,
    )
    multi = MultiQueryCTUP(config, workload.places, workload.units)
    multi.register("a", 3)
    multi.register("b", 8)
    threshold = ThresholdCTUP(
        config, workload.places, workload.units, tau=-4.0
    )
    tracker = ChangeTracker(
        OptCTUP(config, workload.places, workload.units)
    )
    history = TopKHistory(tracker)

    for monitor in (naive, basic, opt):
        monitor.initialize()
    batched.monitor.initialize()
    adaptive.monitor.initialize()
    multi.initialize()
    threshold.initialize()
    tracker.initialize()
    history.start(timestamp=0.0)

    pending = []
    for i, update in enumerate(workload.stream):
        oracle.apply(update)
        naive.process(update)
        basic.process(update)
        opt.process(update)
        adaptive.process(update)
        multi.process(update)
        threshold.process(update)
        tracker.process(update)
        pending.append(update)
        if len(pending) == 12:
            batched.process_batch(pending)
            pending = []

        if i % CHECK_EVERY == CHECK_EVERY - 1:
            # results agree with ground truth...
            for monitor in (naive, basic, opt, adaptive.monitor):
                verdict = oracle.validate(monitor.top_k(), config.k)
                assert verdict.ok, (i, monitor.name, verdict.problems[:3])
            verdict = oracle.validate(multi.top_k("b"), 8)
            assert verdict.ok, (i, "multik", verdict.problems[:3])
            truth_below = {
                pid for pid, s in oracle.safeties().items() if s < -4.0
            }
            assert {
                r.place_id for r in threshold.unsafe_places()
            } == truth_below, (i, "threshold")
            # ...and the internal invariants hold.
            for monitor in (basic, opt, adaptive.monitor):
                problems = audit_monitor(monitor)
                assert not problems, (i, monitor.name, problems[:3])

    if pending:
        batched.process_batch(pending)
    verdict = oracle.validate(batched.monitor.top_k(), config.k)
    assert verdict.ok, ("batched", verdict.problems[:3])

    # history reconstructs the present.
    last_t = workload.stream[len(workload.stream) - 1].timestamp
    assert set(history.result_at(last_t)) == set(tracker.monitor.topk_ids())

    # every scheme agrees on SK at the end.
    sks = {
        monitor.sk()
        for monitor in (naive, basic, opt, adaptive.monitor, batched.monitor)
    }
    assert len(sks) == 1, sks
