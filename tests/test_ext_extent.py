"""Places with extent (§VII)."""

import random

import pytest

from repro.ext import ExtentCTUP, ExtentPlace
from repro.geometry import Point, Rect
from repro.workloads import RandomWalkMobility, generate_units, record_stream


def random_extent_places(n, seed, max_half=0.01):
    rng = random.Random(seed)
    places = []
    for i in range(n):
        cx, cy = rng.random(), rng.random()
        hw, hh = rng.uniform(0, max_half), rng.uniform(0, max_half)
        places.append(
            ExtentPlace(
                i,
                Rect(
                    max(0.0, cx - hw),
                    max(0.0, cy - hh),
                    min(1.0, cx + hw),
                    min(1.0, cy + hh),
                ),
                rng.choice([0, 0, 1, 1, 2, 5, 9]),
            )
        )
    return places


def brute_force(places, positions, radius):
    def ap(rect):
        count = 0
        for p in positions.values():
            dx = max(rect.xmin - p.x, 0.0, p.x - rect.xmax)
            dy = max(rect.ymin - p.y, 0.0, p.y - rect.ymax)
            if dx * dx + dy * dy <= radius * radius:
                count += 1
        return count

    return {p.place_id: float(ap(p.extent) - p.required_protection) for p in places}


@pytest.fixture
def extent_world(small_config):
    places = random_extent_places(500, seed=8)
    units = generate_units(25, small_config.protection_range, seed=9)
    stream = record_stream(RandomWalkMobility(units, step=0.03, seed=10), 100)
    return places, units, stream


class TestExtentPlace:
    def test_anchor_is_center(self):
        p = ExtentPlace(0, Rect(0.1, 0.1, 0.3, 0.5), 1)
        assert p.anchor() == Point(0.2, 0.3)

    def test_negative_rp_rejected(self):
        with pytest.raises(ValueError):
            ExtentPlace(0, Rect(0, 0, 1, 1), -1)


class TestExtentMonitor:
    def check_valid(self, monitor, places, positions, radius, k):
        truth = brute_force(places, positions, radius)
        values = sorted(truth.values())
        true_sk = values[k - 1]
        result = monitor.top_k()
        assert len(result) == k
        for record in result:
            assert truth[record.place_id] == record.safety
        assert max(r.safety for r in result) == true_sk
        must = {pid for pid, s in truth.items() if s < true_sk}
        assert must <= {r.place_id for r in result}

    def test_initial_result(self, small_config, extent_world):
        places, units, _ = extent_world
        monitor = ExtentCTUP(small_config, places, units)
        monitor.initialize()
        positions = {u.unit_id: u.location for u in units}
        self.check_valid(
            monitor, places, positions, small_config.protection_range,
            small_config.k,
        )

    def test_tracks_stream(self, small_config, extent_world):
        places, units, stream = extent_world
        monitor = ExtentCTUP(small_config, places, units)
        monitor.initialize()
        positions = {u.unit_id: u.location for u in units}
        for i, update in enumerate(stream):
            monitor.process(update)
            positions[update.unit_id] = update.new_location
            if i % 25 == 24:
                self.check_valid(
                    monitor,
                    places,
                    positions,
                    small_config.protection_range,
                    small_config.k,
                )

    def test_point_extents_match_core(self, small_config, small_places, small_units, small_stream, small_oracle):
        """Zero-extent rectangles reproduce the point-place semantics."""
        eplaces = [
            ExtentPlace(
                p.place_id,
                Rect(p.location.x, p.location.y, p.location.x, p.location.y),
                p.required_protection,
            )
            for p in small_places
        ]
        monitor = ExtentCTUP(small_config, eplaces, small_units)
        monitor.initialize()
        for update in small_stream.prefix(60):
            small_oracle.apply(update)
            monitor.process(update)
        truth = small_oracle.safeties()
        for record in monitor.top_k():
            assert truth[record.place_id] == record.safety
        assert monitor.sk() == small_oracle.sk(small_config.k)

    def test_duplicate_ids_rejected(self, small_config, small_units):
        p = ExtentPlace(0, Rect(0.1, 0.1, 0.2, 0.2), 1)
        with pytest.raises(ValueError):
            ExtentCTUP(small_config, [p, p], small_units)

    def test_empty_places_rejected(self, small_config, small_units):
        with pytest.raises(ValueError):
            ExtentCTUP(small_config, [], small_units)

    def test_lifecycle_guards(self, small_config, extent_world):
        places, units, stream = extent_world
        monitor = ExtentCTUP(small_config, places, units)
        with pytest.raises(RuntimeError):
            monitor.process(stream[0])
        monitor.initialize()
        with pytest.raises(RuntimeError):
            monitor.initialize()

    def test_unknown_semantics_rejected(self, small_config, small_units):
        places = random_extent_places(10, seed=1)
        with pytest.raises(ValueError):
            ExtentCTUP(small_config, places, small_units, semantics="touches")

    def test_covers_semantics_tracks_truth(self, small_config, extent_world):
        """The 'covers' reading: a disk must contain the whole extent."""
        places, units, stream = extent_world
        monitor = ExtentCTUP(small_config, places, units, semantics="covers")
        monitor.initialize()
        positions = {u.unit_id: u.location for u in units}
        for update in stream:
            monitor.process(update)
            positions[update.unit_id] = update.new_location
        radius = small_config.protection_range

        def ap(rect):
            count = 0
            for p in positions.values():
                dx = max(p.x - rect.xmin, rect.xmax - p.x)
                dy = max(p.y - rect.ymin, rect.ymax - p.y)
                if dx * dx + dy * dy <= radius * radius:
                    count += 1
            return count

        truth = {
            p.place_id: float(ap(p.extent) - p.required_protection)
            for p in places
        }
        values = sorted(truth.values())
        true_sk = values[small_config.k - 1]
        result = monitor.top_k()
        for record in result:
            assert truth[record.place_id] == record.safety
        assert max(r.safety for r in result) == true_sk

    def test_covers_never_exceeds_intersects(self, small_config, extent_world):
        """Coverage is the stricter predicate: safeties can only drop."""
        places, units, _ = extent_world
        generous = ExtentCTUP(small_config, places, units, semantics="intersects")
        strict = ExtentCTUP(small_config, places, units, semantics="covers")
        generous.initialize()
        strict.initialize()
        assert strict.sk() <= generous.sk()

    def test_large_extents_still_valid(self, small_config, small_units):
        """Extents comparable to a cell stress the inflated classification."""
        places = random_extent_places(200, seed=3, max_half=0.08)
        stream = record_stream(
            RandomWalkMobility(small_units, step=0.04, seed=4), 60
        )
        monitor = ExtentCTUP(small_config, places, small_units)
        monitor.initialize()
        positions = {u.unit_id: u.location for u in small_units}
        for update in stream:
            monitor.process(update)
            positions[update.unit_id] = update.new_location
        self.check_valid(
            monitor, places, positions, small_config.protection_range,
            small_config.k,
        )
