"""Unit + property tests for the maintained-place table."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import MaintainedPlaces, kth_smallest, topk_rows
from repro.geometry import Point
from repro.model import Place


def place(pid: int, x: float = 0.5, y: float = 0.5, rp: int = 1) -> Place:
    return Place(pid, Point(x, y), rp)


def table_with(entries) -> MaintainedPlaces:
    table = MaintainedPlaces()
    for pid, safety in entries:
        table.insert(place(pid), safety, cell=0)
    return table


class TestHelpers:
    def test_kth_smallest_basic(self):
        assert kth_smallest(np.array([5.0, 1.0, 3.0]), 2) == 3.0

    def test_kth_smallest_not_enough_values(self):
        assert kth_smallest(np.array([1.0]), 2) == math.inf

    def test_topk_rows_tie_break_by_id(self):
        ids = np.array([30, 10, 20], dtype=np.int64)
        safety = np.array([1.0, 1.0, 1.0])
        rows = topk_rows(ids, safety, 2)
        assert ids[rows].tolist() == [10, 20]

    def test_topk_rows_orders_by_safety_first(self):
        ids = np.array([1, 2, 3], dtype=np.int64)
        safety = np.array([3.0, -1.0, 0.0])
        rows = topk_rows(ids, safety, 3)
        assert ids[rows].tolist() == [2, 3, 1]

    def test_topk_rows_empty(self):
        assert len(topk_rows(np.empty(0, dtype=np.int64), np.empty(0), 5)) == 0

    def test_topk_rows_tie_straddling_the_k_boundary(self):
        # regression: a tie group larger than the remaining k slots must
        # be cut by ascending id — the shared (safety, id) contract that
        # makes per-shard partial results mergeable into a unique prefix.
        ids = np.array([40, 10, 30, 20, 50], dtype=np.int64)
        safety = np.array([-1.0, 0.0, -1.0, -1.0, -1.0])
        rows = topk_rows(ids, safety, 3)
        assert ids[rows].tolist() == [20, 30, 40]
        # growing k extends the same prefix, never reorders it.
        rows4 = topk_rows(ids, safety, 4)
        assert ids[rows4].tolist() == [20, 30, 40, 50]
        assert ids[rows4][:3].tolist() == ids[rows].tolist()

    def test_table_top_k_agrees_with_topk_rows_on_ties(self):
        entries = [(40, -1.0), (10, 0.0), (30, -1.0), (20, -1.0), (50, -1.0)]
        table = table_with(entries)
        ids = np.array([pid for pid, _ in entries], dtype=np.int64)
        safety = np.array([s for _, s in entries])
        for k in (1, 3, 5):
            from_rows = [int(ids[r]) for r in topk_rows(ids, safety, k)]
            from_table = [r.place_id for r in table.top_k(k)]
            assert from_table == from_rows

    @settings(max_examples=100)
    @given(st.lists(st.integers(-10, 10), min_size=1, max_size=50), st.integers(1, 10))
    def test_topk_rows_matches_sorted(self, values, k):
        ids = np.arange(len(values), dtype=np.int64)
        safety = np.array(values, dtype=np.float64)
        rows = topk_rows(ids, safety, k)
        expected = sorted(zip(values, range(len(values))))[: min(k, len(values))]
        assert [(safety[r], ids[r]) for r in rows.tolist()] == [
            (float(s), i) for s, i in expected
        ]


class TestInsertRemove:
    def test_insert_and_lookup(self):
        table = table_with([(1, -2.0), (2, 0.0)])
        assert len(table) == 2
        assert 1 in table
        assert table.safety_of(1) == -2.0
        assert table.place_of(2).place_id == 2

    def test_duplicate_insert_rejected(self):
        table = table_with([(1, 0.0)])
        with pytest.raises(ValueError):
            table.insert(place(1), 1.0, cell=0)

    def test_remove_id(self):
        table = table_with([(1, -2.0), (2, 0.0)])
        removed_place, safety = table.remove_id(1)
        assert removed_place.place_id == 1
        assert safety == -2.0
        assert 1 not in table
        assert len(table) == 1

    def test_swap_remove_keeps_index_consistent(self):
        table = table_with([(1, -1.0), (2, -2.0), (3, -3.0)])
        table.remove_id(1)  # last row swaps into row 0
        assert table.safety_of(3) == -3.0
        assert table.safety_of(2) == -2.0

    def test_remove_rows_returns_min_safety(self):
        table = table_with([(1, -1.0), (2, -5.0), (3, 3.0)])
        assert table.remove_rows([0, 1]) == -5.0

    def test_remove_rows_empty(self):
        table = table_with([(1, -1.0)])
        assert table.remove_rows([]) == math.inf

    def test_remove_rows_out_of_range(self):
        table = table_with([(1, -1.0)])
        with pytest.raises(IndexError):
            table.remove_rows([5])

    def test_bulk_removal_path(self):
        # enough rows that the compaction path triggers.
        table = table_with([(i, float(i)) for i in range(100)])
        min_removed = table.remove_rows(range(10, 100))
        assert min_removed == 10.0
        assert len(table) == 10
        for pid in range(10):
            assert table.safety_of(pid) == float(pid)

    def test_growth_beyond_initial_capacity(self):
        table = table_with([(i, float(i)) for i in range(500)])
        assert len(table) == 500
        assert table.safety_of(499) == 499.0

    def test_remove_cell(self):
        table = MaintainedPlaces()
        table.insert(place(1), -1.0, cell=7)
        table.insert(place(2), -4.0, cell=7)
        table.insert(place(3), 0.0, cell=8)
        assert table.remove_cell(7) == -4.0
        assert len(table) == 1
        assert 3 in table


class TestCellQueries:
    def test_rows_of_cell(self):
        table = MaintainedPlaces()
        table.insert(place(1), 0.0, cell=3)
        table.insert(place(2), 0.0, cell=4)
        table.insert(place(3), 0.0, cell=3)
        rows = table.rows_of_cell(3)
        assert {int(table._ids[r]) for r in rows} == {1, 3}

    def test_cells_present(self):
        table = MaintainedPlaces()
        table.insert(place(1), 0.0, cell=3)
        table.insert(place(2), 0.0, cell=9)
        assert table.cells_present() == {3, 9}

    def test_safety_at_rows_is_copy(self):
        table = table_with([(1, -1.0)])
        values = table.safety_at_rows(np.array([0]))
        values[0] = 99.0
        assert table.safety_of(1) == -1.0


class TestSkAndTopK:
    def test_sk_with_enough_rows(self):
        table = table_with([(1, -5.0), (2, -3.0), (3, 0.0)])
        assert table.sk(2) == -3.0

    def test_sk_with_too_few_rows(self):
        table = table_with([(1, -5.0)])
        assert table.sk(2) == math.inf

    def test_top_k_order_and_tie_break(self):
        table = table_with([(5, -1.0), (2, -1.0), (9, -3.0), (7, 4.0)])
        result = table.top_k(3)
        assert [(r.place_id, r.safety) for r in result] == [
            (9, -3.0),
            (2, -1.0),
            (5, -1.0),
        ]

    def test_top_k_fewer_rows_than_k(self):
        table = table_with([(1, 0.0)])
        assert len(table.top_k(5)) == 1

    def test_top_k_empty(self):
        assert MaintainedPlaces().top_k(3) == []

    def test_min_safety(self):
        table = table_with([(1, 2.0), (2, -7.0)])
        assert table.min_safety() == -7.0
        assert MaintainedPlaces().min_safety() == math.inf

    def test_set_safety(self):
        table = table_with([(1, 2.0)])
        table.set_safety(1, -9.0)
        assert table.sk(1) == -9.0

    def test_safeties_snapshot(self):
        table = table_with([(1, 2.0), (2, -1.0)])
        assert table.safeties_snapshot() == {1: 2.0, 2: -1.0}


class TestApplyUnitMove:
    def test_gain_when_entering_new_disk(self):
        table = MaintainedPlaces()
        table.insert(place(1, 0.5, 0.5), 0.0, cell=0)
        table.apply_unit_move(Point(0.9, 0.9), Point(0.52, 0.5), radius=0.1)
        assert table.safety_of(1) == 1.0

    def test_loss_when_leaving_old_disk(self):
        table = MaintainedPlaces()
        table.insert(place(1, 0.5, 0.5), 0.0, cell=0)
        table.apply_unit_move(Point(0.52, 0.5), Point(0.9, 0.9), radius=0.1)
        assert table.safety_of(1) == -1.0

    def test_no_change_when_inside_both(self):
        table = MaintainedPlaces()
        table.insert(place(1, 0.5, 0.5), 0.0, cell=0)
        table.apply_unit_move(Point(0.52, 0.5), Point(0.48, 0.5), radius=0.1)
        assert table.safety_of(1) == 0.0

    def test_no_change_when_outside_both(self):
        table = MaintainedPlaces()
        table.insert(place(1, 0.5, 0.5), 0.0, cell=0)
        table.apply_unit_move(Point(0.9, 0.9), Point(0.1, 0.9), radius=0.1)
        assert table.safety_of(1) == 0.0

    def test_returns_scanned_count(self):
        table = table_with([(1, 0.0), (2, 0.0)])
        assert table.apply_unit_move(Point(0, 0), Point(1, 1), 0.1) == 2
        assert MaintainedPlaces().apply_unit_move(Point(0, 0), Point(1, 1), 0.1) == 0

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)
            ),
            min_size=1,
            max_size=20,
        ),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    )
    def test_move_matches_scalar_predicate(self, coords, ox, oy, nx_, ny_):
        table = MaintainedPlaces()
        for i, (x, y) in enumerate(coords):
            table.insert(place(i, x, y), 0.0, cell=0)
        old, new = Point(ox, oy), Point(nx_, ny_)
        radius = 0.2
        table.apply_unit_move(old, new, radius=radius)
        r2 = radius * radius  # the kernel's exact comparison value
        for i, (x, y) in enumerate(coords):
            was = old.squared_distance_to(Point(x, y)) <= r2
            now = new.squared_distance_to(Point(x, y)) <= r2
            assert table.safety_of(i) == float(int(now) - int(was))

    def test_weighted_move(self):
        table = MaintainedPlaces()
        table.insert(place(1, 0.5, 0.5), 0.0, cell=0)

        def weight(d):
            return np.clip(1 - d / 0.1, 0, 1)

        # unit moves from distance 0.05 (w=0.5) to distance 0.025 (w=0.75)
        table.apply_unit_move_weighted(
            Point(0.55, 0.5), Point(0.525, 0.5), weight
        )
        assert table.safety_of(1) == pytest.approx(0.25)
