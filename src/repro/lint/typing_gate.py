"""RPLT01 — the strict typing gate.

The gate has two layers. The one that always runs is the AST
annotation-strictness pass below: every function in the strict module
set (``[tool.reprolint] strict-typed-modules`` in pyproject, the
committed allowlist) must annotate every parameter and its return type
— the same contract as mypy's ``disallow_untyped_defs`` +
``disallow_incomplete_defs``, checkable with the stdlib alone. The
second layer is mypy itself: :func:`run_mypy` shells out to a ``mypy``
binary when one is installed (CI installs it; the gate degrades to
"skipped" where it is absent, never to a silent pass being reported as
checked). ``[tool.mypy]`` in pyproject carries the matching
configuration, and ``py.typed`` ships the annotations downstream.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
from typing import Iterator, Sequence

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

#: decorators under which a def is exempt (their bodies are stubs or
#: their signatures are intentionally dynamic).
_EXEMPT_DECORATORS = frozenset({"overload"})


@rule(
    "RPLT01",
    "typing-gate",
    "functions in the strict-typed module set annotate every parameter "
    "and the return type",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not project.config.is_strict_typed(source.module):
        return
    for node, owner in _walk_functions(source.tree):
        if _is_exempt(node):
            continue
        missing = _missing_annotations(node, is_method=owner is not None)
        for what, anchor in missing:
            yield Violation(
                code="RPLT01",
                message=(
                    f"{node.name}() {what} — module "
                    f"'{source.module}' is in the strict-typed set "
                    "([tool.reprolint] strict-typed-modules)"
                ),
                path=source.path,
                line=getattr(anchor, "lineno", node.lineno),
                col=getattr(anchor, "col_offset", node.col_offset),
            )


def _walk_functions(
    tree: ast.AST,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Every def with its immediately enclosing class (or ``None``)."""

    def visit(
        node: ast.AST, owner: ast.ClassDef | None
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, owner)

    yield from visit(tree, None)


def _is_exempt(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in _EXEMPT_DECORATORS:
            return True
    return False


def _missing_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[tuple[str, ast.AST]]:
    missing: list[tuple[str, ast.AST]] = []
    positional = list(node.args.posonlyargs) + list(node.args.args)
    for index, arg in enumerate(positional):
        if (
            is_method
            and index == 0
            and arg.arg in ("self", "cls")
        ):
            continue
        if arg.annotation is None:
            missing.append((f"parameter '{arg.arg}' is unannotated", arg))
    for arg in node.args.kwonlyargs:
        if arg.annotation is None:
            missing.append((f"parameter '{arg.arg}' is unannotated", arg))
    if node.args.vararg is not None and node.args.vararg.annotation is None:
        missing.append(
            (f"parameter '*{node.args.vararg.arg}' is unannotated", node.args.vararg)
        )
    if node.args.kwarg is not None and node.args.kwarg.annotation is None:
        missing.append(
            (f"parameter '**{node.args.kwarg.arg}' is unannotated", node.args.kwarg)
        )
    if node.returns is None:
        missing.append(("is missing a return annotation", node))
    return missing


# -- the mypy layer -----------------------------------------------------


def run_mypy(paths: Sequence[str]) -> tuple[int | None, str]:
    """Run mypy over ``paths`` if a binary is available.

    Returns ``(exit_code, output)``; ``exit_code`` is ``None`` when no
    mypy is installed (the caller reports "skipped", never "passed").
    The configuration comes from ``[tool.mypy]`` in pyproject.toml.
    """
    binary = shutil.which("mypy")
    if binary is None:
        return None, "mypy not installed; typing gate ran annotation checks only"
    proc = subprocess.run(
        [binary, *paths],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr
