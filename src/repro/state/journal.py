"""The append-only update journal (write-ahead log).

One JSON line per record, four record kinds:

``"u"``
    a single-mode update, journaled *before* it is processed
    (write-ahead: after a crash the tail record may or may not have been
    applied to the last snapshot — replay is safe either way because the
    snapshot always sits at a record boundary);
``"b"``
    a batch-mode update, journaled when it enters the session buffer;
``"f"``
    a flush marker, written *after* the buffered batch was processed —
    so a consistent snapshot always refers to a ``"u"`` or ``"f"``
    sequence number, never to the middle of a burst;
``"c"``
    a control event (see :mod:`repro.control`), journaled write-ahead
    like ``"u"``. The payload is the raw event codec dict — this module
    stays below ``repro.control`` in the layering and never interprets
    it.

Records carry monotonically increasing sequence numbers. Reopening an
existing journal continues the sequence; a torn tail (a partial or
unparsable last line, the signature of a crash mid-append) is truncated
away on open.

Replay contract: feed ``"u"`` and ``"b"`` records back through a session
configured with the *same* batch size — the buffer refills and
auto-flushes at the same boundaries — and call ``flush()`` on each
``"f"`` marker (a no-op when the auto-flush already drained the buffer,
which makes replay idempotent at batch boundaries).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.geometry import Point
from repro.model import LocationUpdate

if TYPE_CHECKING:
    from repro.obs.spec import Observability

#: single-mode update, batch-buffered update, flush marker, control event.
OP_UPDATE = "u"
OP_BATCHED = "b"
OP_FLUSH = "f"
OP_CONTROL = "c"


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One decoded journal line."""

    seq: int
    op: str
    #: ``None`` for flush markers and control events.
    update: LocationUpdate | None = None
    #: raw control-event payload (``"c"`` records only).
    control: dict | None = None

    @property
    def is_flush(self) -> bool:
        return self.op == OP_FLUSH

    @property
    def is_control(self) -> bool:
        return self.op == OP_CONTROL


def _encode(record: JournalRecord) -> str:
    if record.op == OP_CONTROL:
        return json.dumps(
            {"q": record.seq, "op": record.op, "c": record.control}
        )
    if record.update is None:
        return json.dumps({"q": record.seq, "op": record.op})
    update = record.update
    return json.dumps(
        {
            "q": record.seq,
            "op": record.op,
            "u": update.unit_id,
            "old": [update.old_location.x, update.old_location.y],
            "new": [update.new_location.x, update.new_location.y],
            "t": update.timestamp,
        }
    )


def _decode(line: str) -> JournalRecord:
    data = json.loads(line)
    seq = int(data["q"])
    op = data["op"]
    if op == OP_FLUSH:
        return JournalRecord(seq, op)
    if op == OP_CONTROL:
        control = data["c"]
        if not isinstance(control, dict):
            raise ValueError("control record payload must be a dict")
        return JournalRecord(seq, op, control=control)
    if op not in (OP_UPDATE, OP_BATCHED):
        raise ValueError(f"unknown journal op {op!r}")
    return JournalRecord(
        seq,
        op,
        LocationUpdate(
            unit_id=int(data["u"]),
            old_location=Point(*data["old"]),
            new_location=Point(*data["new"]),
            timestamp=data["t"],
        ),
    )


class UpdateJournal:
    """An append-only, crash-truncating journal of location updates."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._last_seq = 0
        self.obs: "Observability | None" = None
        self._recover_tail()
        self._file = self.path.open("a", encoding="utf-8")

    def attach_observability(self, obs: "Observability") -> None:
        """Span + count every append (fsync latency is the point)."""
        self.obs = obs
        obs.registry.counter(
            "ctup_journal_records_total",
            "Journal records appended (and fsynced), by op.",
            labelnames=("op",),
        )

    def _recover_tail(self) -> None:
        """Scan the existing file: adopt the last sequence number and
        truncate any torn tail left behind by a crash mid-append."""
        if not self.path.exists():
            return
        good_end = 0
        with self.path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # partial last line: torn
                try:
                    record = _decode(raw.decode("utf-8"))
                except (ValueError, KeyError, UnicodeDecodeError):
                    break  # unparsable line: torn from here on
                self._last_seq = record.seq
                good_end += len(raw)
        if good_end != self.path.stat().st_size:
            with self.path.open("rb+") as handle:
                handle.truncate(good_end)

    # -- writing ----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recently appended record."""
        return self._last_seq

    def append_update(self, update: LocationUpdate, *, batched: bool) -> int:
        """Journal one update; returns its sequence number."""
        op = OP_BATCHED if batched else OP_UPDATE
        return self._append(JournalRecord(self._last_seq + 1, op, update))

    def append_flush(self) -> int:
        """Journal a flush marker (the buffered batch was processed)."""
        return self._append(JournalRecord(self._last_seq + 1, OP_FLUSH))

    def append_control(self, payload: dict) -> int:
        """Journal a control event (write-ahead, like ``"u"``).

        ``payload`` is the :func:`repro.control.events.encode_event`
        dict; this layer treats it as opaque.
        """
        return self._append(
            JournalRecord(self._last_seq + 1, OP_CONTROL, control=payload)
        )

    def sync(self) -> None:
        """Force the journal tail to disk (idempotent, safe when closed).

        Every append already flushes and fsyncs, so this is a formal
        barrier for ``close()`` paths — it guarantees durability even if
        the append discipline ever gains buffering.
        """
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())

    def _append(self, record: JournalRecord) -> int:
        obs = self.obs
        if obs is None:
            return self._append_synced(record)
        with obs.tracer.span("journal.append", cat="state", op=record.op):
            seq = self._append_synced(record)
        obs.registry.counter(
            "ctup_journal_records_total",
            "Journal records appended (and fsynced), by op.",
            labelnames=("op",),
        ).labels(op=record.op).inc()
        return seq

    def _append_synced(self, record: JournalRecord) -> int:
        self._file.write(_encode(record) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._last_seq = record.seq
        return record.seq

    def truncate(self) -> None:
        """Drop every record (a fresh, non-resuming run owns the dir)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._last_seq = 0

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "UpdateJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    def records(self) -> Iterator[JournalRecord]:
        """All committed records, in sequence order."""
        self._file.flush()
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.endswith("\n"):
                    yield _decode(line)

    def tail(self, after_seq: int) -> list[JournalRecord]:
        """Every record with a sequence number greater than ``after_seq``
        — the replay input for a snapshot taken at ``after_seq``."""
        return [r for r in self.records() if r.seq > after_seq]
