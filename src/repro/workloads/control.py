"""Control-event workloads: reconfigurations interleaved with updates.

The data workloads in this package produce pure location-update streams;
a production control plane (see :mod:`repro.control`) also sees places
opening and closing, operators retuning ``k``, grids repartitioned. A
:class:`ControlPlan` is the deterministic analogue of a recorded
:class:`~repro.workloads.stream.UpdateStream` for that second input: a
seeded sequence of ``(position, event)`` pairs, where ``position`` is
the number of data updates that precede the event. Recording the plan
once and replaying it into every monitor keeps equivalence comparisons
exact, the same way recorded streams do.

:func:`interleave` merges a plan into a stream as one iterable;
:func:`drive` feeds the merged sequence through a
:class:`~repro.engine.session.MonitorSession` (updates via ``feed``,
events via ``apply_control``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.control.events import (
    ControlEvent,
    GridRetuned,
    KChanged,
    PlaceAdded,
    PlaceRemoved,
    PlaceReweighted,
    ShardPlanChanged,
)
from repro.geometry import Point, Rect
from repro.model import LocationUpdate, Place

#: event kinds :func:`generate_control_plan` can draw, in draw order.
DEFAULT_EVENT_KINDS: tuple[str, ...] = (
    "place_added",
    "place_removed",
    "place_reweighted",
    "k_changed",
    "grid_retuned",
)


@dataclass(frozen=True)
class ControlPlan:
    """A replayable schedule of control events against one stream.

    ``events`` holds ``(position, event)`` pairs sorted by position:
    the event fires after that many data updates have been fed. Several
    events may share a position (they apply back to back, in order).
    """

    events: tuple[tuple[int, ControlEvent], ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[tuple[int, ControlEvent]]:
        return iter(self.events)

    def final_places(self, places: Sequence[Place]) -> list[Place]:
        """The catalog after every place event in the plan (for building
        a reference monitor over the post-plan world)."""
        from repro.control.replay import fold_places

        return fold_places(places, [event for _, event in self.events])


def generate_control_plan(
    places: Sequence[Place],
    *,
    stream_length: int,
    n_events: int = 4,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    k_range: tuple[int, int] = (1, 20),
    granularity_range: tuple[int, int] = (4, 24),
    shard_counts: Sequence[int] = (),
    kinds: Sequence[str] = DEFAULT_EVENT_KINDS,
) -> ControlPlan:
    """A deterministic, always-valid random plan for ``places``.

    Validity is tracked statefully: removals and reweights only target
    places still in the catalog at that point of the plan, and added
    places get ids above every existing one. Pass ``shard_counts`` to
    also draw ``ShardPlanChanged`` events (only meaningful when the
    consuming monitor is sharded, so off by default).
    """
    if stream_length < 0:
        raise ValueError("stream_length cannot be negative")
    rng = random.Random(seed)
    live = {p.place_id: p for p in places}
    next_id = (max(live) if live else 0) + 1
    menu = list(kinds)
    if shard_counts:
        menu.append("shard_plan_changed")
    positions = sorted(rng.randint(0, stream_length) for _ in range(n_events))
    events: list[tuple[int, ControlEvent]] = []
    for position in positions:
        kind = rng.choice(menu)
        if kind in ("place_removed", "place_reweighted") and not live:
            kind = "place_added"
        event: ControlEvent
        if kind == "place_added":
            place = Place(
                place_id=next_id,
                location=Point(
                    rng.uniform(space.xmin, space.xmax),
                    rng.uniform(space.ymin, space.ymax),
                ),
                required_protection=rng.randint(0, 6),
                kind="pop-up",
            )
            next_id += 1
            live[place.place_id] = place
            event = PlaceAdded(place)
        elif kind == "place_removed":
            victim = rng.choice(sorted(live))
            del live[victim]
            event = PlaceRemoved(victim)
        elif kind == "place_reweighted":
            target = rng.choice(sorted(live))
            required = rng.randint(0, 8)
            old = live[target]
            live[target] = Place(
                old.place_id, old.location, required, old.kind
            )
            event = PlaceReweighted(target, required)
        elif kind == "k_changed":
            event = KChanged(rng.randint(*k_range))
        elif kind == "grid_retuned":
            event = GridRetuned(rng.randint(*granularity_range))
        elif kind == "shard_plan_changed":
            event = ShardPlanChanged(rng.choice(list(shard_counts)))
        else:
            raise ValueError(f"unknown control-event kind {kind!r}")
        events.append((position, event))
    return ControlPlan(tuple(events))


def interleave(
    updates: Iterable[LocationUpdate], plan: ControlPlan
) -> Iterator[LocationUpdate | ControlEvent]:
    """Merge a stream and a plan into one ordered sequence.

    Events scheduled at position ``i`` come out after the ``i``-th
    update (position 0 means before any update); events past the end of
    the stream trail at the end, still in plan order.
    """
    pending = list(plan.events)
    fed = 0
    for update in updates:
        while pending and pending[0][0] <= fed:
            yield pending.pop(0)[1]
        yield update
        fed += 1
    for _, event in pending:
        yield event


def drive(session, items: Iterable[LocationUpdate | ControlEvent]) -> int:
    """Feed a merged sequence through a session; returns updates fed.

    Updates go through ``session.feed``; control events through
    ``session.apply_control`` (which flushes any buffered burst first —
    control applies at batch boundaries by construction).
    """
    fed = 0
    for item in items:
        if isinstance(item, LocationUpdate):
            session.feed(item)
            fed += 1
        else:
            session.apply_control(item)
    session.flush()
    return fed
