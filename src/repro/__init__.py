"""repro — a reproduction of "On Monitoring the top-k Unsafe Places".

Zhang, Du and Hu (ICDE 2008) define the Continuous Top-k Unsafe Places
(CTUP) query: as protecting units (police cars) stream location updates,
continuously report the k places whose safety — actual protection minus
required protection — is smallest. This package implements the paper's
two schemes (BasicCTUP, OptCTUP with the Decrease Once Optimization),
the naïve baseline, the substrates they rest on (grid partition,
two-level storage, network-based moving-object workload) and the full
benchmark harness reproducing the paper's evaluation.

Quickstart (the ``repro.api`` facade is the supported entry point)::

    from repro import CTUPConfig, generate_places, generate_units, open_session
    from repro.workloads import RandomWalkMobility, record_stream

    config = CTUPConfig(k=10)
    places = generate_places(5000, seed=1)
    units = generate_units(100, config.protection_range, seed=2)
    session = open_session("opt", places=places, units=units, config=config)
    session.start()
    for update in record_stream(RandomWalkMobility(units, seed=3), 1000):
        session.feed(update)
    session.flush()
    print(session.monitor.top_k()[0])

``make_monitor(..., shard=ShardSpec(shards=4))`` swaps in the sharded
execution layer (:mod:`repro.shard`) behind the same contract, and
``open_session(..., obs=ObsSpec(metrics=True))`` attaches the
observability layer (:mod:`repro.obs`).
"""

from repro.api import (
    ControlSpec,
    DurabilitySpec,
    ShardSpec,
    make_monitor,
    open_session,
)
from repro.obs import Observability, ObsSpec
from repro.core import (
    BasicCTUP,
    ChangeTracker,
    CTUPConfig,
    CTUPMonitor,
    NaiveCTUP,
    OptCTUP,
    TopKChange,
)
from repro.engine import MonitorSession
from repro.geometry import Circle, Point, Rect
from repro.model import LocationUpdate, Place, SafetyRecord, Unit
from repro.shard import GlobalTopK, ShardedMonitor, ShardPlan, ShardRouter
from repro.validate import Oracle
from repro.workloads import generate_places, generate_units

__version__ = "1.6.0"

__all__ = [
    "CTUPConfig",
    "CTUPMonitor",
    "NaiveCTUP",
    "BasicCTUP",
    "OptCTUP",
    "ShardedMonitor",
    "ShardPlan",
    "ShardRouter",
    "GlobalTopK",
    "make_monitor",
    "open_session",
    "ShardSpec",
    "ControlSpec",
    "DurabilitySpec",
    "ObsSpec",
    "Observability",
    "MonitorSession",
    "ChangeTracker",
    "TopKChange",
    "Place",
    "Unit",
    "LocationUpdate",
    "SafetyRecord",
    "Point",
    "Rect",
    "Circle",
    "Oracle",
    "generate_places",
    "generate_units",
    "__version__",
]
