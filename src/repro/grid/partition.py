"""The uniform grid partition of the monitored space."""

from __future__ import annotations

import math
from typing import Iterator

from repro.geometry import Circle, Point, Rect

# A cell is addressed by its (column, row) pair.
CellId = tuple[int, int]


class GridPartition:
    """A uniform ``nx x ny`` partition of a rectangular space.

    Every point of the space belongs to exactly one cell: cell ``(i, j)``
    owns the half-open square ``[xmin + i*w, xmin + (i+1)*w) x [...]``,
    except that points on the space's upper/right boundary are clamped
    into the last row/column so the partition covers the closed space.

    The *granularity* parameter of the paper's Table III corresponds to
    ``nx == ny``.
    """

    def __init__(self, space: Rect, nx: int, ny: int) -> None:
        if nx <= 0 or ny <= 0:
            raise ValueError(f"grid must have positive dimensions, got {nx}x{ny}")
        if space.width <= 0 or space.height <= 0:
            raise ValueError("space must have positive area")
        self.space = space
        self.nx = nx
        self.ny = ny
        self.cell_width = space.width / nx
        self.cell_height = space.height / ny

    @classmethod
    def unit_square(cls, granularity: int) -> "GridPartition":
        """The paper's default setting: the unit square, ``g x g`` cells."""
        return cls(Rect(0.0, 0.0, 1.0, 1.0), granularity, granularity)

    @property
    def cell_count(self) -> int:
        return self.nx * self.ny

    def cell_of(self, p: Point) -> CellId:
        """The cell owning point ``p``.

        Raises :class:`ValueError` for points outside the space — places
        and units are required to live inside the monitored space.
        """
        if not self.space.contains_point(p):
            raise ValueError(f"point {p} outside the monitored space {self.space}")
        i = int((p.x - self.space.xmin) / self.cell_width)
        j = int((p.y - self.space.ymin) / self.cell_height)
        # Points on the max boundary index one past the end; clamp them in.
        i = min(i, self.nx - 1)
        j = min(j, self.ny - 1)
        return (i, j)

    def cell_rect(self, cell: CellId) -> Rect:
        """The closed rectangle of ``cell``."""
        i, j = cell
        self._check_cell(cell)
        x0 = self.space.xmin + i * self.cell_width
        y0 = self.space.ymin + j * self.cell_height
        return Rect(x0, y0, x0 + self.cell_width, y0 + self.cell_height)

    def all_cells(self) -> Iterator[CellId]:
        """All cell ids, column-major."""
        for i in range(self.nx):
            for j in range(self.ny):
                yield (i, j)

    def cells_overlapping_rect(self, rect: Rect) -> Iterator[CellId]:
        """Cells whose rectangle intersects ``rect`` (clipped to the space)."""
        if not self.space.intersects(rect):
            return
        i_lo = int(math.floor((rect.xmin - self.space.xmin) / self.cell_width))
        i_hi = int(math.floor((rect.xmax - self.space.xmin) / self.cell_width))
        j_lo = int(math.floor((rect.ymin - self.space.ymin) / self.cell_height))
        j_hi = int(math.floor((rect.ymax - self.space.ymin) / self.cell_height))
        i_lo = max(i_lo, 0)
        j_lo = max(j_lo, 0)
        i_hi = min(i_hi, self.nx - 1)
        j_hi = min(j_hi, self.ny - 1)
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                yield (i, j)

    def cells_touching_circle(self, circle: Circle) -> Iterator[CellId]:
        """Cells whose rectangle intersects the (closed) disk.

        This is the candidate set for lower-bound maintenance: a cell not
        touching the old nor the new disk keeps the N relation on both
        sides and its bound is unchanged (the ``N -> N`` entry of the
        tables).
        """
        for cell in self.cells_overlapping_rect(circle.bounding_rect()):
            if circle.intersects_rect(self.cell_rect(cell)):
                yield cell

    def linear(self, cell: CellId) -> int:
        """A dense integer encoding of ``cell`` (row-major).

        The maintained-place table stores cell ownership as this integer
        so per-cell row selection is a vectorised comparison.
        """
        self._check_cell(cell)
        i, j = cell
        return i * self.ny + j

    def from_linear(self, index: int) -> CellId:
        """Inverse of :meth:`linear`."""
        if not (0 <= index < self.cell_count):
            raise ValueError(f"linear index {index} outside grid")
        return (index // self.ny, index % self.ny)

    def _check_cell(self, cell: CellId) -> None:
        i, j = cell
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise ValueError(f"cell {cell} outside grid {self.nx}x{self.ny}")
