"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny — a dict of metric families keyed by
name, each family a dict of children keyed by label values.  Everything
is plain Python floats mutated under the GIL; exposition readers may
race a writer and observe a metric mid-run, which is the normal
contract for scrape-style monitoring.

Two implementations share one surface:

* :class:`MetricsRegistry` — the live registry.
* :class:`NullRegistry` — returned when observability is disabled; every
  operation is a no-op so instrumented code needs no ``if`` guards.

Metric names follow Prometheus conventions (``ctup_`` prefix,
``_total`` suffix on monotonic counters); see docs/architecture.md.
"""

from __future__ import annotations

import re
import threading
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds) spanning the latencies the
#: monitor actually produces: micro-second kernel passes up to
#: multi-second initial builds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount!r})")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Force the counter to ``value`` (bridge use: mirroring a ledger)."""
        self.value = float(value)


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:  # reprolint: disable=RPL007 -- Prometheus gauge API name; a method slot shadows nothing in module scope
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram with cumulative Prometheus semantics."""

    kind = "histogram"
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted: {bounds!r}")
        self.buckets: tuple[float, ...] = bounds
        # one slot per finite bound plus the implicit +Inf overflow slot
        self.counts: list[int] = [0] * (len(bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        idx = 0
        for bound in self.buckets:
            if value <= bound:
                break
            idx += 1
        self.counts[idx] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound, Prometheus ``le`` style."""
        out: list[int] = []
        running = 0
        for n in self.counts[:-1]:
            running += n
            out.append(running)
        return out

    @property
    def value(self) -> float:
        """The running sum — lets ``registry.value()`` work uniformly."""
        return self.total


_Child = Counter | Gauge | Histogram


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        self.buckets: tuple[float, ...] = tuple(buckets)
        self._children: dict[tuple[str, ...], _Child] = {}

    def _make_child(self) -> _Child:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: object) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name!r} takes labels {self.labelnames!r}, got {sorted(labels)!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def children(self) -> Iterator[tuple[tuple[str, ...], _Child]]:
        yield from sorted(self._children.items())

    # Label-less convenience passthroughs ------------------------------
    def inc(self, amount: float = 1.0) -> None:
        child = self.labels()
        assert isinstance(child, (Counter, Gauge))
        child.inc(amount)

    def set(self, value: float) -> None:  # reprolint: disable=RPL007 -- Prometheus gauge API name; a method slot shadows nothing in module scope
        child = self.labels()
        assert isinstance(child, Gauge)
        child.set(value)

    def observe(self, value: float) -> None:
        child = self.labels()
        assert isinstance(child, Histogram)
        child.observe(value)


class MetricsRegistry:
    """The live metric registry: named families of labelled children.

    Registration is idempotent — asking for an existing name with the
    same kind/labels returns the existing family, so instrumentation
    sites can re-register on every call without bookkeeping.

    The ``/metrics`` server thread reads the family table concurrently
    with registration on the main loop, so every ``_families`` access
    holds ``_lock`` (``GUARDED_FIELDS`` is the RPL012 contract).
    Family/child objects themselves are append-only and safe to use
    outside the lock once handed out.
    """

    enabled = True
    GUARDED_FIELDS = ("_families",)

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames!r}"
                    )
                return family
            family = MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name, for exposition."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: object) -> float:
        """The current value of one child (sum for histograms)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            raise KeyError(name)
        # child lookup happens outside the lock: families are
        # append-only and Lock is not reentrant (labels() may register).
        return family.labels(**labels).value


class _NullChild:
    """Accepts every child operation and does nothing."""

    kind = "null"
    value = 0.0
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:  # reprolint: disable=RPL007 -- Prometheus gauge API name; a method slot shadows nothing in module scope
        pass

    def set_to(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullFamily(_NullChild):
    __slots__ = ()

    def labels(self, **labels: object) -> "_NullFamily":
        return self

    def children(self) -> Iterator[tuple[tuple[str, ...], _Child]]:
        return iter(())


_NULL_FAMILY = _NullFamily()


class NullRegistry:
    """Registry stand-in when metrics are disabled: every op is a no-op."""

    enabled = False

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _NullFamily:
        return _NULL_FAMILY

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _NullFamily:
        return _NULL_FAMILY

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _NullFamily:
        return _NULL_FAMILY

    def families(self) -> list[MetricFamily]:
        return []

    def get(self, name: str) -> MetricFamily | None:
        return None

    def value(self, name: str, **labels: object) -> float:
        raise KeyError(name)


#: Shared null singleton — NullRegistry carries no state.
NULL_REGISTRY = NullRegistry()
