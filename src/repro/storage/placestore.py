"""The lower storage level: all places, grouped by grid cell.

A :class:`PlaceStore` lays the (static) place set out in pages, one page
run per grid cell, mirroring the paper's lower level. Monitors never
hold the full place set; they call :meth:`read_cell` when a cell must be
illuminated/accessed, which costs page reads, and :meth:`cell_arrays`
for the vectorised safety computation (page reads charged on the first
touch, later calls served — and separately counted — from an immutable
per-cell SoA snapshot cache).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.grid.partition import CellId, GridPartition
from repro.model import Place
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IoStats
from repro.storage.pagestore import PageStore


class CellArrays:
    """Columnar projection of one cell's places (for numpy kernels)."""

    __slots__ = ("ids", "xs", "ys", "required")

    def __init__(self, places: Sequence[Place]) -> None:
        self.ids = np.array([p.place_id for p in places], dtype=np.int64)
        self.xs = np.array([p.location.x for p in places], dtype=np.float64)
        self.ys = np.array([p.location.y for p in places], dtype=np.float64)
        self.required = np.array(
            [p.required_protection for p in places], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.ids)


class PlaceStore:
    """Cell-clustered storage of the full place set.

    Parameters
    ----------
    grid:
        the space partition; every place is assigned to exactly one cell.
    places:
        the static place set.
    page_capacity:
        places per simulated page.
    buffer_pages:
        if positive, reads go through an LRU buffer pool of that many
        pages (the buffer ablation); if zero, every read is physical.
    """

    def __init__(
        self,
        grid: GridPartition,
        places: Iterable[Place],
        page_capacity: int = 64,
        buffer_pages: int = 0,
    ) -> None:
        self.grid = grid
        self._pages = PageStore(page_capacity=page_capacity)
        self._buffer = BufferPool(self._pages, buffer_pages)
        self._cell_pages: dict[CellId, list[int]] = {}
        self._cell_place_counts: dict[CellId, int] = {}
        self._array_cache: dict[CellId, CellArrays] = {}
        self._place_count = 0
        self._fingerprint: str | None = None
        self._bulk_load(places)

    def _bulk_load(self, places: Iterable[Place]) -> None:
        by_cell: dict[CellId, list[Place]] = {}
        seen: set[int] = set()
        for place in places:
            if place.place_id in seen:
                raise ValueError(f"duplicate place id {place.place_id}")
            seen.add(place.place_id)
            by_cell.setdefault(self.grid.cell_of(place.location), []).append(place)
            self._place_count += 1
        for cell, cell_places in by_cell.items():
            self._cell_pages[cell] = self._pages.allocate_all(cell_places)
            self._cell_place_counts[cell] = len(cell_places)

    @property
    def io_stats(self) -> IoStats:
        """Shared traffic counters (physical and buffered reads)."""
        return self._pages.stats

    @property
    def buffer(self) -> BufferPool:
        return self._buffer

    @property
    def place_count(self) -> int:
        return self._place_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def cell_place_count(self, cell: CellId) -> int:
        """How many places live in ``cell`` (0 for empty cells)."""
        return self._cell_place_counts.get(cell, 0)

    def occupied_cells(self) -> list[CellId]:
        """Cells that contain at least one place."""
        return list(self._cell_pages)

    def read_cell(self, cell: CellId) -> list[Place]:
        """Load all places of ``cell``, paying the page reads."""
        places: list[Place] = []
        for page_id in self._cell_pages.get(cell, ()):
            places.extend(self._buffer.read(page_id).records)
        return places

    def read_cell_with_arrays(self, cell: CellId) -> tuple[list[Place], CellArrays]:
        """Load a cell's places and their columnar view in one charge.

        The monitors need both the :class:`Place` objects (to maintain)
        and the columnar projection (to vectorise the safety kernel);
        fetching them separately would double-count the page reads. The
        arrays are row-aligned with the returned place list.
        """
        places = self.read_cell(cell)
        arrays = self._array_cache.get(cell)
        if arrays is None:
            arrays = CellArrays(places)
            self._array_cache[cell] = arrays
        return places, arrays

    def cell_arrays(self, cell: CellId) -> CellArrays:
        """Columnar view of the cell; I/O is charged on the first touch only.

        Places are immutable, so the projection is built once per cell —
        paying the page walk like :meth:`read_cell` — and every later
        call is served from the SoA cache. Cache hits are still visible
        in the accounting (``IoStats.array_hits``, in page equivalents)
        so re-evaluation traffic is measurable without pretending the
        pages were read again.
        """
        arrays = self._array_cache.get(cell)
        if arrays is not None:
            self._pages.stats.array_hits += len(self._cell_pages.get(cell, ()))
            return arrays
        places = []
        for page_id in self._cell_pages.get(cell, ()):
            places.extend(self._buffer.read(page_id).records)
        arrays = CellArrays(places)
        self._array_cache[cell] = arrays
        return arrays

    def iter_all_places(self) -> Iterable[Place]:
        """Stream every stored place (used by oracles and initialisation).

        Accounting: charges one read per page, like a full scan.
        """
        for cell in self._cell_pages:
            yield from self.read_cell(cell)

    @property
    def fingerprint(self) -> str:
        """A stable digest of the stored place set (checkpoint identity).

        Floats are hashed via ``float.hex()`` so the digest is invariant
        across Python versions that format ``repr`` differently. The
        scan is unaccounted (``peek``): fingerprinting a live monitor at
        checkpoint time must not perturb its I/O counters. The place set
        is static, so the digest is computed once and cached.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            lines: list[str] = []
            for pages in self._cell_pages.values():
                for page_id in pages:
                    for place in self._pages.peek(page_id).records:
                        lines.append(
                            f"{place.place_id}:{place.location.x.hex()}:"
                            f"{place.location.y.hex()}:{place.required_protection}\n"
                        )
            lines.sort()
            for line in lines:
                digest.update(line.encode("ascii"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def export_cache_state(self) -> dict[str, Any]:
        """JSON-codable picture of the store's transient caches.

        Captures which cells sit in the SoA array cache, which pages are
        resident in the buffer pool (LRU order), and the pool's hit/miss
        counters — everything :meth:`restore_cache_state` needs to bring
        a freshly bulk-loaded store back to the snapshotted cache state.
        """
        return {
            "arrays": [self.grid.linear(cell) for cell in self._array_cache],
            "frames": self._buffer.frame_ids(),
            "buffer_hits": self._buffer.hits,
            "buffer_misses": self._buffer.misses,
        }

    def restore_cache_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild the transient caches captured by :meth:`export_cache_state`.

        The array cache is repopulated by re-projecting the recorded
        cells and the buffer frames are reloaded out of band; callers
        overwrite the shared :class:`IoStats` afterwards, so any
        accounting noise from the rebuild is erased.
        """
        self._array_cache.clear()
        for index in state["arrays"]:
            cell = self.grid.from_linear(int(index))
            places: list[Place] = []
            for page_id in self._cell_pages.get(cell, ()):
                places.extend(self._pages.peek(page_id).records)
            self._array_cache[cell] = CellArrays(places)
        self._buffer.restore_frames([int(p) for p in state["frames"]])
        self._buffer.hits = int(state["buffer_hits"])
        self._buffer.misses = int(state["buffer_misses"])
