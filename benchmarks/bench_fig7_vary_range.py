"""Fig. 7 — update cost varying the protection range.

Paper shape: OptCTUP stays below BasicCTUP for every range; larger
protection disks touch more cells per update, so both schemes get more
expensive as the range grows.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig7_vary_range(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig7").run, rounds=1, iterations=1
    )
    record_result(result)
    assert column(result, "range") == [0.05, 0.1, 0.15, 0.2, 0.25]
    basic = column(result, "basic ms/upd")
    opt = column(result, "opt ms/upd")
    for r, b, o in zip(column(result, "range"), basic, opt):
        assert o < b, f"opt should beat basic at range={r}"
    # a 5x larger disk must cost more than the smallest one.
    assert basic[-1] > basic[0]
