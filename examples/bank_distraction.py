"""The "Midwest Bank Robbers" scenario from the paper's introduction.

Criminals stage a distraction across town to lure patrol cars away from
a bank before robbing it. A CTUP monitor sees the bank's safety drop in
real time as the protecting units leave — exactly the situation the
query is designed to flag before the response window closes.

The scenario is scripted: a downtown bank (required protection 6) is
well covered at first; an incident in the far corner then pulls the
nearby cars away one by one.

Run:  python examples/bank_distraction.py
"""

import math

from repro import CTUPConfig, OptCTUP, Point
from repro.model import LocationUpdate, Place, Unit
from repro.workloads import RequiredProtectionModel, generate_places


def main() -> None:
    config = CTUPConfig(k=3, delta=3, protection_range=0.1, granularity=10)

    # downtown bank + a city of ordinary places (parks, residences,
    # shops — nothing that demands more than two cars, so the bank is
    # the one high-value target in town).
    background = RequiredProtectionModel(
        tiers=((0, 0.3, "park"), (1, 0.55, "residence"), (2, 0.15, "shop"))
    )
    bank = Place(
        90_000, Point(0.31, 0.47), required_protection=6, kind="bank"
    )
    places = generate_places(
        4_000, seed=21, protection_model=background
    ) + [bank]

    # six patrol cars ring the bank; four more are spread around town.
    ring = [
        Unit(
            i,
            Point(
                bank.location.x + 0.05 * math.cos(i * math.pi / 3),
                bank.location.y + 0.05 * math.sin(i * math.pi / 3),
            ),
            config.protection_range,
        )
        for i in range(6)
    ]
    others = [
        Unit(10 + i, Point(0.2 + 0.2 * i, 0.85), config.protection_range)
        for i in range(4)
    ]
    units = ring + others

    monitor = OptCTUP(config, places, units)
    monitor.initialize()

    def bank_status() -> str:
        top = {r.place_id: r.safety for r in monitor.top_k()}
        if bank.place_id in top:
            return f"TOP-{config.k} UNSAFE (safety {top[bank.place_id]:+.0f})"
        return "covered"

    print(f"initial:  SK={monitor.sk():+.0f}, bank is {bank_status()}")

    # the distraction: an "incident" at the far corner pulls the ring
    # units away one by one.
    incident = Point(0.95, 0.95)
    positions = {u.unit_id: u.location for u in units}
    for step, unit in enumerate(ring, start=1):
        update = LocationUpdate(
            unit_id=unit.unit_id,
            old_location=positions[unit.unit_id],
            new_location=incident,
            timestamp=float(step),
        )
        positions[unit.unit_id] = incident
        monitor.process(update)
        print(
            f"t={step}: car {unit.unit_id} races to the incident -> "
            f"bank {bank_status()}"
        )

    top1 = monitor.top_k()[0]
    print(
        f"\nafter the distraction the least safe place in town is "
        f"{'the bank' if top1.place_id == bank.place_id else top1.place.kind} "
        f"(safety {top1.safety:+.0f})"
    )
    assert top1.place_id == bank.place_id, "the bank should now lead the top-k"
    print("dispatch recommendation: return units to the bank NOW")


if __name__ == "__main__":
    main()
