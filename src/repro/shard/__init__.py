"""Sharded CTUP execution: partition, route, monitor per shard, merge.

The horizontal-scaling layer over the monitor contract:

* :class:`ShardPlan` — assigns every grid cell (hence every place) to
  one of S disjoint shards;
* :class:`ShardRouter` — fans a location update out only to the shards
  whose cells the move's old/new protection disks can touch;
* :class:`ShardedMonitor` — one full monitor (any scheme) per shard
  behind the ordinary maintain/access phase API, with optional
  thread-pool draining;
* :class:`GlobalTopK` — merges per-shard partial top-k lists into the
  exact global answer with a provable refill rule.

See ``docs/architecture.md`` ("Sharding & the global top-k merge") for
the correctness argument.
"""

from repro.shard.merge import GlobalTopK, MergeStats
from repro.shard.monitor import ShardedMonitor
from repro.shard.plan import ShardPlan, plan_for
from repro.shard.router import ShardRouter

__all__ = [
    "GlobalTopK",
    "MergeStats",
    "ShardPlan",
    "ShardRouter",
    "ShardedMonitor",
    "plan_for",
]
