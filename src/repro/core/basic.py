"""BasicCTUP (§III): dark and illuminated cells.

Every grid cell is either *dark* — the monitor knows only a lower bound
on the safeties of the places inside it — or *illuminated* — all its
places are held in memory with exact safeties. The scheme guarantees
that every cell containing a top-k unsafe place is illuminated, so the
answer can always be read off the maintained places.

Per location update (§III-C):

1. adjust the safeties of all maintained places,
2. adjust the lower bound of every affected dark cell per Table I,
3. illuminate every dark cell whose bound fell below ``SK``,
4. darken every illuminated cell that holds no top-k place.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.core import kernels
from repro.core.config import CTUPConfig
from repro.core.monitor import CTUPMonitor
from repro.core.tables import table1_delta
from repro.core.topk import MaintainedPlaces
from repro.geometry import Point
from repro.grid.cellstate import (
    CellState,
    export_cell_states,
    restore_cell_states,
)
from repro.grid.partition import CellId
from repro.model import CoalescedMove, LocationUpdate, Place, SafetyRecord, Unit


class BasicCTUP(CTUPMonitor):
    """The basic grid-bound scheme of Section III."""

    name = "basic"

    STATE_FIELDS = ("cell_states", "maintained")

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        super().__init__(config, places, units)
        #: per-cell state for cells that contain at least one place;
        #: empty cells can never hold an unsafe place and stay implicit.
        self.cell_states: dict[CellId, CellState] = {}
        self.maintained = MaintainedPlaces()

    # -- initialization (§III-B) -----------------------------------------

    def _build_initial_state(self) -> None:
        for cell in self.store.occupied_cells():
            arrays = self.store.cell_arrays(cell)
            ap, compared = self.units.ap_counts_near(
                arrays.xs, arrays.ys, self.grid.cell_rect(cell)
            )
            safeties = ap - arrays.required
            self.counters.distance_rows += len(arrays) * compared
            self.counters.places_loaded += len(arrays)
            self.cell_states[cell] = CellState(
                lower_bound=float(safeties.min()),
                place_count=len(arrays),
            )
        # illuminate cells in increasing bound order until SK covers the rest.
        by_bound = sorted(
            self.cell_states, key=lambda c: self.cell_states[c].lower_bound
        )
        for cell in by_bound:
            if self.sk() <= self.cell_states[cell].lower_bound:
                break
            self._illuminate(cell)

    # -- update (§III-C) --------------------------------------------------

    def _apply(self, update: LocationUpdate) -> None:
        old = self.units.apply(update)
        new = update.new_location
        radius = self.config.protection_range

        # Step 1: maintained places cross the old/new protection disks.
        scanned = self.maintained.apply_unit_move(old, new, radius)
        self.counters.maintained_scans += scanned
        # two point-in-disk tests (old and new position) per scanned place.
        self.counters.distance_rows += 2 * scanned

        # Step 2: Table I on every affected dark cell.
        self._adjust_dark_bounds(old, new, radius)

    def _apply_burst(self, moves: Sequence[CoalescedMove]) -> int:
        """Chain-aware maintain phase: endpoints telescope, tables fold.

        Position tracking and the maintained-table scan see only each
        chain's endpoints (intermediate applies cancel exactly); Table I
        runs per chain step because its deltas are path-dependent
        (``P→P`` decreases, so a three-waypoint ``P`` chain decreases
        twice). With ``config.burst_kernels`` the whole burst goes
        through the vectorised kernels instead of this per-chain loop —
        bit-identical results either way.
        """
        if self.config.burst_kernels:
            return kernels.apply_burst_basic(self, moves)
        radius = self.config.protection_range
        skipped = 0
        for move in moves:
            old = self.units.apply_chain(move.raws)
            scanned = self.maintained.apply_unit_move(old, move.last_new, radius)
            self.counters.maintained_scans += scanned
            self.counters.distance_rows += 2 * scanned
            # fold Table I over the waypoints, entering the chain at the
            # *tracked* old position (what per-update _apply would see).
            step_old = old
            for raw in move.raws:
                self._adjust_dark_bounds(step_old, raw.new_location, radius)
                step_old = raw.new_location
            skipped += move.raw_count - 1
        return skipped

    def _refresh(self) -> int:
        # Step 3: illuminate dark cells whose bound fell below SK.
        if self.config.burst_kernels:
            accessed = kernels.refill_below_sk(
                self.cell_states,
                self.sk,
                self._illuminate,
                skip_illuminated=True,
                obs=self.obs,
            )
        else:
            accessed = self._illuminate_below_sk()
        # Step 4: darken illuminated cells that hold no top-k place.
        self._darken_unneeded()
        return accessed

    def _adjust_dark_bounds(self, old: Point, new: Point, radius: float) -> None:
        # the stencil classifies the old and new disk against every
        # candidate cell in one vectorised pass (cells touching neither
        # disk are N -> N and never emitted).
        stencil = self.grid.stencil(radius)
        for cell, rel_old, rel_new in stencil.classify_move(old, new):
            state = self.cell_states.get(cell)
            if state is None or state.illuminated:
                continue
            delta = table1_delta(rel_old, rel_new)
            if delta > 0:
                state.increase(delta)
                self.counters.lb_increments += 1
            elif delta < 0:
                state.decrease(-delta)
                self.counters.lb_decrements += 1

    def _illuminate_below_sk(self) -> int:
        """Step 3: repeatedly light the darkest offending cell."""
        accessed = 0
        while True:
            sk = self.sk()
            best: CellId | None = None
            best_bound = math.inf
            for cell, state in self.cell_states.items():
                if not state.illuminated and state.lower_bound < sk:
                    if state.lower_bound < best_bound:
                        best_bound = state.lower_bound
                        best = cell
            if best is None:
                return accessed
            self._illuminate(best)
            accessed += 1

    def _darken_unneeded(self) -> None:
        """Step 4: discard illuminated cells without a top-k place."""
        top_cells = {
            self.grid.linear(self.grid.cell_of(record.place.location))
            for record in self.top_k()
        }
        for cell, state in self.cell_states.items():
            if not state.illuminated:
                continue
            linear = self.grid.linear(cell)
            if linear in top_cells:
                continue
            rows = self.maintained.rows_of_cell(linear)
            min_removed = self.maintained.remove_rows(rows.tolist())
            state.illuminated = False
            # the discard happens with exact knowledge: the tightest
            # sound bound is the cell's current minimum safety.
            state.lower_bound = min_removed
            self.counters.cells_darkened += 1

    def _illuminate(self, cell: CellId) -> None:
        """Load a cell's places and track them exactly."""
        state = self.cell_states[cell]
        places, arrays = self.store.read_cell_with_arrays(cell)
        ap, compared = self.units.ap_counts_near(
            arrays.xs, arrays.ys, self.grid.cell_rect(cell)
        )
        safeties = ap - arrays.required
        self.maintained.insert_batch(places, safeties, self.grid.linear(cell))
        state.illuminated = True
        state.access_count += 1
        self.counters.cells_accessed += 1
        self.counters.places_loaded += len(places)
        self.counters.distance_rows += len(places) * compared

    # -- reconfiguration (repro.control) ----------------------------------

    def _reset_scheme_state(self) -> None:
        self.cell_states = {}
        self.maintained = MaintainedPlaces()

    def _control_place_added(self, place: Place, cell: CellId) -> bool:
        safety = (
            float(self.units.ap_of_point(place.location))
            - place.required_protection
        )
        state = self.cell_states.get(cell)
        if state is None:
            # a previously empty cell: exact knowledge, tightest bound.
            self.cell_states[cell] = CellState(
                lower_bound=safety, place_count=1
            )
        elif state.illuminated:
            self.maintained.insert(place, safety, self.grid.linear(cell))
            state.place_count += 1
        else:
            # dark: the new minimum is at least min(old bound, safety).
            state.lower_bound = min(state.lower_bound, safety)
            state.place_count += 1
        self._refresh()
        return True

    def _control_place_removed(self, place: Place, cell: CellId) -> bool:
        state = self.cell_states[cell]
        if state.illuminated:
            self.maintained.remove_id(place.place_id)
        # a dark cell's bound stays sound: removing a place can only
        # raise the true minimum.
        state.place_count -= 1
        if state.place_count == 0:
            # an empty cell must look exactly like one that never had
            # places (the store already dropped its directory entry).
            del self.cell_states[cell]
        self._refresh()
        return True

    def _control_place_reweighted(
        self, old: Place, new: Place, cell: CellId
    ) -> bool:
        shift = new.required_protection - old.required_protection
        state = self.cell_states[cell]
        if state.illuminated:
            pid = new.place_id
            self.maintained.remove_id(pid)
            self.maintained.insert(
                new,
                float(self.units.ap_of_point(new.location))
                - new.required_protection,
                self.grid.linear(cell),
            )
        elif shift > 0:
            # safety = ap - required dropped by `shift`; lowering the
            # bound by the same amount keeps it sound.
            state.decrease(shift)
        # shift < 0 on a dark cell: safeties only rose, bound stays sound.
        self._refresh()
        return True

    # -- result -----------------------------------------------------------

    def top_k(self) -> list[SafetyRecord]:
        return self.maintained.top_k(self.config.k)

    def partial_top_k(self, m: int) -> list[SafetyRecord]:
        # every place of every illuminated cell is maintained, and every
        # dark-cell place sits at or above its cell bound >= SK — so the
        # maintained table can answer the prefix query for any m.
        return self.maintained.top_k(m)

    def sk(self) -> float:
        return self.maintained.sk(self.config.k)

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        return {
            "cell_states": export_cell_states(self.cell_states, self.grid),
            "maintained": self.maintained.export_rows(),
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        self.cell_states = restore_cell_states(
            fields["cell_states"], self.grid
        )
        self.maintained = MaintainedPlaces()
        self.maintained.restore_rows(
            fields["maintained"], self.store, self.grid
        )

    # -- diagnostics --------------------------------------------------------

    def illuminated_cells(self) -> set[CellId]:
        """Currently illuminated cells (tests and examples)."""
        return {
            cell
            for cell, state in self.cell_states.items()
            if state.illuminated
        }
