"""The composable monitoring engine.

The schemes in :mod:`repro.core` expose a two-phase update pipeline
(``apply_update`` / ``refresh``); this package layers the production
machinery around that exchangeable core:

* :class:`~repro.engine.session.MonitorSession` — one facade wiring a
  monitor, optional burst batching, result-change tracking, periodic
  invariant audits and instrumentation hooks;
* :class:`~repro.engine.hooks.MonitorHooks` — the hook protocol
  (``on_update_start/end``, ``on_batch_flush``, ``on_topk_change``,
  ``on_refresh``) for metrics, alerting and timeline collection.

Future scaling work (sharding, async ingest, replication) lands here as
additional layers rather than as wrappers around one concrete scheme.
"""

from repro.engine.hooks import HookList, MonitorHooks
from repro.engine.session import MonitorSession

__all__ = [
    "HookList",
    "MonitorHooks",
    "MonitorSession",
]
