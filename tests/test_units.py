"""Unit tests for the server-side unit index."""

import numpy as np
import pytest

from repro.core.units import UnitIndex
from repro.geometry import Point, Rect
from repro.model import LocationUpdate, Unit


def fleet(*positions, radius=0.1):
    return [
        Unit(i, Point(x, y), radius) for i, (x, y) in enumerate(positions)
    ]


class TestConstruction:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            UnitIndex([])

    def test_mixed_ranges_rejected(self):
        units = [
            Unit(0, Point(0.1, 0.1), 0.1),
            Unit(1, Point(0.2, 0.2), 0.2),
        ]
        with pytest.raises(ValueError):
            UnitIndex(units)

    def test_duplicate_ids_rejected(self):
        units = [Unit(0, Point(0.1, 0.1), 0.1), Unit(0, Point(0.2, 0.2), 0.1)]
        with pytest.raises(ValueError):
            UnitIndex(units)

    def test_copies_units(self):
        original = fleet((0.5, 0.5))
        index = UnitIndex(original)
        original[0].location = Point(0.9, 0.9)
        assert index.location_of(0) == Point(0.5, 0.5)

    def test_len_iter_contains(self):
        index = UnitIndex(fleet((0.1, 0.1), (0.2, 0.2)))
        assert len(index) == 2
        assert [u.unit_id for u in index] == [0, 1]
        assert 1 in index
        assert 5 not in index


class TestApply:
    def test_apply_moves_unit(self):
        index = UnitIndex(fleet((0.5, 0.5)))
        old = index.apply(LocationUpdate(0, Point(0.5, 0.5), Point(0.6, 0.6)))
        assert old == Point(0.5, 0.5)
        assert index.location_of(0) == Point(0.6, 0.6)

    def test_apply_unknown_unit(self):
        index = UnitIndex(fleet((0.5, 0.5)))
        with pytest.raises(KeyError):
            index.apply(LocationUpdate(7, Point(0.5, 0.5), Point(0.6, 0.6)))

    def test_apply_inconsistent_old_location(self):
        index = UnitIndex(fleet((0.5, 0.5)))
        with pytest.raises(ValueError):
            index.apply(LocationUpdate(0, Point(0.4, 0.4), Point(0.6, 0.6)))

    def test_apply_updates_vector_state(self):
        index = UnitIndex(fleet((0.5, 0.5)))
        index.apply(LocationUpdate(0, Point(0.5, 0.5), Point(0.9, 0.9)))
        counts = index.ap_counts(np.array([0.9]), np.array([0.9]))
        assert counts[0] == 1


class TestApCounts:
    def test_counts_match_scalar(self):
        index = UnitIndex(fleet((0.2, 0.2), (0.25, 0.2), (0.8, 0.8)))
        xs = np.array([0.2, 0.5, 0.8])
        ys = np.array([0.2, 0.5, 0.8])
        counts = index.ap_counts(xs, ys)
        expected = [
            index.ap_of_point(Point(x, y)) for x, y in zip(xs, ys)
        ]
        assert counts.tolist() == expected

    def test_boundary_counts(self):
        index = UnitIndex(fleet((0.0, 0.0), radius=0.5))
        counts = index.ap_counts(np.array([0.5]), np.array([0.0]))
        assert counts[0] == 1  # closed disk

    def test_empty_query(self):
        index = UnitIndex(fleet((0.2, 0.2)))
        assert len(index.ap_counts(np.array([]), np.array([]))) == 0

    def test_chunking_consistency(self):
        # many points force the chunked path; compare with per-point.
        index = UnitIndex(fleet(*[(i / 10, i / 10) for i in range(10)]))
        rng = np.random.default_rng(0)
        xs = rng.random(5000)
        ys = rng.random(5000)
        counts = index.ap_counts(xs, ys)
        for i in range(0, 5000, 997):
            assert counts[i] == index.ap_of_point(Point(xs[i], ys[i]))


class TestApCountsNear:
    def test_matches_full_computation(self):
        index = UnitIndex(fleet(*[(i / 7, (i * 3 % 7) / 7) for i in range(7)]))
        rect = Rect(0.2, 0.2, 0.4, 0.4)
        xs = np.array([0.25, 0.3, 0.39])
        ys = np.array([0.25, 0.35, 0.21])
        near, compared = index.ap_counts_near(xs, ys, rect)
        full = index.ap_counts(xs, ys)
        assert near.tolist() == full.tolist()
        assert compared <= len(index)

    def test_excludes_unreachable_units(self):
        index = UnitIndex(fleet((0.1, 0.1), (0.9, 0.9)))
        rect = Rect(0.0, 0.0, 0.2, 0.2)
        _, compared = index.ap_counts_near(np.array([0.1]), np.array([0.1]), rect)
        assert compared == 1

    def test_no_reachable_units(self):
        index = UnitIndex(fleet((0.9, 0.9)))
        rect = Rect(0.0, 0.0, 0.1, 0.1)
        counts, compared = index.ap_counts_near(
            np.array([0.05]), np.array([0.05]), rect
        )
        assert compared == 0
        assert counts.tolist() == [0]


class TestWeightedProtection:
    def test_step_weight_equals_counting(self):
        index = UnitIndex(fleet((0.3, 0.3), (0.35, 0.3)))
        rect = Rect(0.25, 0.25, 0.45, 0.45)
        xs = np.array([0.3, 0.4])
        ys = np.array([0.3, 0.4])

        def step(d):
            return (d <= 0.1).astype(float)

        weighted, _ = index.weighted_protection_near(xs, ys, rect, step)
        counted, _ = index.ap_counts_near(xs, ys, rect)
        assert weighted.tolist() == counted.astype(float).tolist()

    def test_linear_weight_values(self):
        index = UnitIndex(fleet((0.3, 0.3)))
        rect = Rect(0.25, 0.25, 0.45, 0.45)

        def linear(d):
            return np.clip(1 - d / 0.1, 0, 1)

        weighted, _ = index.weighted_protection_near(
            np.array([0.3, 0.35]), np.array([0.3, 0.3]), rect, linear
        )
        assert weighted[0] == pytest.approx(1.0)
        assert weighted[1] == pytest.approx(0.5)


class TestSnapshot:
    def test_snapshot_positions_copy(self):
        index = UnitIndex(fleet((0.5, 0.5)))
        snap = index.snapshot_positions()
        index.apply(LocationUpdate(0, Point(0.5, 0.5), Point(0.9, 0.9)))
        assert snap[0].tolist() == [0.5, 0.5]
