"""Documentation consistency: the docs describe the repo that exists."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


class TestFilesExist:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "MEASURED.md",
            "docs/algorithms.md",
            "docs/architecture.md",
            "pyproject.toml",
        ],
    )
    def test_documented_files_present(self, path):
        assert (ROOT / path).exists(), path


class TestReadme:
    def test_examples_table_matches_directory(self, readme):
        listed = set(re.findall(r"\| `(\w+\.py)` \|", readme))
        actual = {p.name for p in (ROOT / "examples").glob("*.py")}
        assert listed == actual, listed ^ actual

    def test_mentions_every_top_package(self, readme):
        for package in (
            "repro.core",
            "repro.engine",
            "repro.geometry",
            "repro.grid",
            "repro.storage",
            "repro.ext",
            "repro.index",
            "repro.persist",
            "repro.roadnet",
            "repro.workloads",
            "repro.bench",
            "repro.experiments",
            "repro.validate",
            "repro.lint",
        ):
            assert package in readme, package

    def test_cites_the_paper(self, readme):
        assert "ICDE 2008" in readme
        assert "top-k Unsafe Places" in readme


class TestDesign:
    def test_every_registered_experiment_indexed(self, design):
        from repro.experiments import all_experiments

        for experiment in all_experiments():
            if experiment.kind != "ablation":
                assert experiment.experiment_id in design, (
                    experiment.experiment_id
                )

    def test_bench_targets_exist(self, design):
        for target in re.findall(r"`benchmarks/(bench_\w+\.py)`", design):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_paper_check_recorded(self, design):
        assert "Paper-text check" in design


class TestExperimentsLog:
    def test_covers_every_paper_artifact(self, experiments_md):
        for artefact in (
            "Table III",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
        ):
            assert artefact in experiments_md, artefact

    def test_every_figure_has_a_status(self, experiments_md):
        assert experiments_md.count("Status:") >= 8

    def test_cited_result_files_exist_after_bench_run(self, experiments_md):
        results_dir = ROOT / "benchmarks" / "bench_results"
        if not results_dir.exists():
            pytest.skip("benchmarks have not been run yet")
        for name in re.findall(r"bench_results/(\w+\.txt)", experiments_md):
            assert (results_dir / name).exists(), name


class TestMeasured:
    def test_measured_covers_all_experiments(self):
        from repro.experiments import all_experiments

        measured = (ROOT / "MEASURED.md").read_text()
        for experiment in all_experiments():
            assert experiment.title in measured, experiment.experiment_id
