"""Fig. 9 — the update-cost split while varying Δ.

Paper shape: as Δ grows, more places are maintained (the maintain part
of the cost rises) and cells are accessed less often (the access part
falls). The machine-independent signatures — maintained-place counts
and cell-access rates — must be monotone; the wall-clock parts follow
them with jitter tolerance.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig9_delta_split(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig9").run, rounds=1, iterations=1
    )
    record_result(result)
    deltas = column(result, "delta")
    assert deltas == [0, 2, 4, 6, 8, 10]
    maintained = column(result, "maintained peak")
    cells = column(result, "cells/upd")
    # more slack -> strictly more maintained places.
    assert maintained == sorted(maintained)
    assert maintained[-1] > maintained[0]
    # more slack -> monotonically fewer cell accesses.
    assert cells == sorted(cells, reverse=True)
    assert cells[-1] < cells[0]
    # the wall-clock access part follows the access rate end to end.
    access_ms = column(result, "access ms/upd")
    assert access_ms[-1] < access_ms[0]
