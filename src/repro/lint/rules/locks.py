"""RPL012 — lock discipline where real threads exist.

Two places in this repo run concurrently with the main loop: the shard
drain pool (``repro.shard``) and the obs ``/metrics`` HTTP server
thread (``repro.obs``). A class there that owns a lock is asserting
"my state is shared"; this rule makes that assertion checkable. The
class declares which attributes the lock guards::

    class MetricsRegistry:
        GUARDED_FIELDS = ("_families",)
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._families = {}

and the rule then verifies, per method CFG, that every read or write
of a guarded field happens with the lock *definitely* held — either
lexically inside ``with self._lock:`` or downstream of an
``acquire()`` with no intervening ``release()`` on any path.
Attributes not declared are documented-immutable by that same
convention (set in ``__init__`` and never mutated — the snapshot rule
RPL008 polices that separately). A lock-owning class in scope that
declares no ``GUARDED_FIELDS`` at all is itself a violation: an
undeclared lock guards nothing checkable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.cfg import Block, build_cfg, scan_roots
from repro.lint.flow.dataflow import BOTTOM, FlagLattice, FlagState, solve_forward
from repro.lint.registry import Violation, rule

SCOPES = ("repro.obs", "repro.shard")

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

_HELD = "held"
_FREE = "free"
_LATTICE = FlagLattice(default=_FREE)
_KEY = "lock"


@rule(
    "RPL012",
    "lock-discipline",
    "attributes shared with the drain pool or the /metrics thread are "
    "accessed under the owning lock (GUARDED_FIELDS) or are "
    "documented-immutable",
    version=1,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef):
            yield from _check_class(source, node)


def _lock_fields(node: ast.ClassDef) -> frozenset[str]:
    """``self.X = threading.Lock()``-style fields assigned in __init__."""
    fields: set[str] = set()
    for item in node.body:
        if not (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "__init__"
        ):
            continue
        for sub in ast.walk(item):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            if not (
                isinstance(value, ast.Call)
                and (
                    (
                        isinstance(value.func, ast.Name)
                        and value.func.id in _LOCK_FACTORIES
                    )
                    or (
                        isinstance(value.func, ast.Attribute)
                        and value.func.attr in _LOCK_FACTORIES
                    )
                )
            ):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    fields.add(target.attr)
    return frozenset(fields)


def _guarded_fields(node: ast.ClassDef) -> tuple[str, ...] | None:
    """The ``GUARDED_FIELDS`` tuple literal, ``None`` when absent."""
    for item in node.body:
        if isinstance(item, ast.AnnAssign):
            targets, value = [item.target], item.value
        elif isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "GUARDED_FIELDS"
            for t in targets
        ):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return ()
        names: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
        return tuple(names)
    return None


def _check_class(
    source: SourceFile, node: ast.ClassDef
) -> Iterator[Violation]:
    locks = _lock_fields(node)
    if not locks:
        return
    guarded = _guarded_fields(node)
    if guarded is None:
        yield Violation(
            code="RPL012",
            message=(
                f"class '{node.name}' owns a lock "
                f"({', '.join(sorted(locks))}) but declares no "
                "GUARDED_FIELDS — declare which attributes the lock "
                "guards so shared-state accesses are checkable (the "
                "drain pool and the /metrics thread run concurrently "
                "with the main loop)"
            ),
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
        )
        return
    guarded_set = frozenset(guarded)
    if not guarded_set:
        return
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__":
            continue  # construction happens-before publication
        yield from _check_method(source, node, item, locks, guarded_set)


def _lock_event(node: ast.AST, locks: frozenset[str]) -> str | None:
    """acquire/release of an owned lock inside one statement."""
    event: str | None = None
    for root in scan_roots(node):
        found = _lock_event_in(root, locks)
        if found is not None:
            event = found
    return event


def _lock_event_in(root: ast.AST, locks: frozenset[str]) -> str | None:
    event: str | None = None
    for sub in ast.walk(root):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("acquire", "release")
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in locks
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            continue
        event = "acquire" if func.attr == "acquire" else "release"
    return event


def _lexically_locked(block: Block, locks: frozenset[str]) -> bool:
    """Whether the block sits inside ``with self.<lock>:``."""
    for item in block.withitems:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr in locks
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return True
    return False


def _guarded_accesses(
    node: ast.AST, guarded: frozenset[str]
) -> Iterator[tuple[str, ast.Attribute]]:
    """``self.<guarded>`` attribute nodes inside one statement."""
    for root in scan_roots(node):
        for sub in ast.walk(root):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in guarded
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                yield (sub.attr, sub)


def _check_method(
    source: SourceFile,
    cls: ast.ClassDef,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    locks: frozenset[str],
    guarded: frozenset[str],
) -> Iterator[Violation]:
    cfg = build_cfg(method)

    def transfer(block: Block, state: FlagState) -> FlagState:
        if block.node is None:
            return state
        event = _lock_event(block.node, locks)
        if event == "acquire":
            return _LATTICE.write(state, _KEY, _HELD)
        if event == "release":
            return _LATTICE.write(state, _KEY, _FREE)
        return state

    in_states = solve_forward(
        cfg, _LATTICE.initial([_KEY]), transfer, _LATTICE.join
    )
    reported: set[tuple[int, str]] = set()
    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        if block.node is None or block.label == "except":
            continue
        state = in_states.get(block_id, BOTTOM)
        if state is BOTTOM or not isinstance(state, dict):
            continue
        if _lexically_locked(block, locks):
            continue
        if _LATTICE.definitely(state, _KEY, _HELD):
            continue
        for attr, access in _guarded_accesses(block.node, guarded):
            marker = (access.lineno, attr)
            if marker in reported:
                continue
            reported.add(marker)
            yield Violation(
                code="RPL012",
                message=(
                    f"access to guarded field 'self.{attr}' in "
                    f"'{cls.name}.{method.name}' without the owning lock "
                    "definitely held — the drain pool / metrics thread "
                    "can observe a torn update; wrap the access in "
                    "'with self."
                    f"{sorted(locks)[0]}:' (GUARDED_FIELDS contract)"
                ),
                path=source.path,
                line=access.lineno,
                col=access.col_offset,
            )
