"""Unit-fleet generation."""

from __future__ import annotations

import random

from repro.geometry import Rect
from repro.model import Unit
from repro.workloads.places import uniform_points


def generate_units(
    n: int,
    protection_range: float,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    id_offset: int = 0,
) -> list[Unit]:
    """``n`` units uniformly placed over ``space``.

    This is the fleet's *initial* deployment; movement comes from a
    mobility model (:mod:`repro.workloads.stream` or
    :mod:`repro.roadnet`).
    """
    if n <= 0:
        raise ValueError("a fleet needs at least one unit")
    rng = random.Random(seed)
    return [
        Unit(
            unit_id=id_offset + i,
            location=point,
            protection_range=protection_range,
        )
        for i, point in enumerate(uniform_points(n, rng, space))
    ]
