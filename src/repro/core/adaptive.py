"""Runtime-adaptive Δ.

Fig. 9 shows Δ trading maintained-place cost against cell-access cost,
and the right value shifts with the workload (fleet density, place
skew, movement tempo). Instead of fixing Δ offline,
:class:`AdaptiveDeltaController` watches the monitor's own counters over
a sliding window and nudges the live Δ towards balance:

* accesses dominating the window → raise Δ (buy more slack);
* the maintained band ballooning while accesses are rare → lower Δ.

Changing Δ at runtime is sound for any non-negative value: Δ only
decides how much of a freshly accessed cell stays maintained, never the
bound arithmetic, so results remain exact throughout (the tests validate
against the oracle while Δ moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.metrics import MonitorCounters, UpdateReport
from repro.core.opt import OptCTUP
from repro.model import LocationUpdate


@dataclass
class AdaptationStep:
    """One window's decision (kept for inspection/telemetry)."""

    at_update: int
    accesses: int
    maintained: int
    delta_before: float
    delta_after: float


class AdaptiveDeltaController:
    """Drives an OptCTUP while retuning Δ from its counters.

    Parameters
    ----------
    monitor:
        the OptCTUP instance to drive.
    window:
        updates between adaptation decisions.
    access_target:
        desired cell accesses per update; more than this raises Δ.
    maintained_budget:
        soft cap on maintained places; exceeding it (while accesses are
        under target) lowers Δ.
    delta_min / delta_max:
        bounds on the live Δ.
    """

    def __init__(
        self,
        monitor: OptCTUP,
        window: int = 200,
        access_target: float = 0.25,
        maintained_budget: int = 2_000,
        delta_min: float = 0.0,
        delta_max: float = 16.0,
        step: float = 2.0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if delta_min < 0 or delta_max < delta_min:
            raise ValueError("need 0 <= delta_min <= delta_max")
        if step <= 0:
            raise ValueError("step must be positive")
        self.monitor = monitor
        self.window = window
        self.access_target = access_target
        self.maintained_budget = maintained_budget
        self.delta_min = delta_min
        self.delta_max = delta_max
        self.step = step
        self.history: list[AdaptationStep] = []
        self._seen = 0
        self._window_start: MonitorCounters = monitor.counters.snapshot()

    def process(self, update: LocationUpdate) -> UpdateReport:
        """Feed one update; adapt Δ at window boundaries."""
        report = self.monitor.process(update)
        self._seen += 1
        if self._seen % self.window == 0:
            self._adapt()
        return report

    def run_stream(self, updates: Iterable[LocationUpdate]) -> int:
        count = 0
        for update in updates:
            self.process(update)
            count += 1
        return count

    def _adapt(self) -> None:
        now = self.monitor.counters.snapshot()
        window_counters = now - self._window_start
        self._window_start = now
        accesses = window_counters.cells_accessed
        access_rate = accesses / self.window
        maintained = len(self.monitor.maintained)
        before = self.monitor.delta
        after = before
        if access_rate > self.access_target:
            after = min(self.delta_max, before + self.step)
        elif maintained > self.maintained_budget:
            after = max(self.delta_min, before - self.step)
        if after != before:
            self.monitor.delta = after
        self.history.append(
            AdaptationStep(
                at_update=self._seen,
                accesses=accesses,
                maintained=maintained,
                delta_before=before,
                delta_after=after,
            )
        )

    @property
    def current_delta(self) -> float:
        return self.monitor.delta
