"""Every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should narrate what they do"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "city_patrol",
        "bank_distraction",
        "threshold_alerts",
        "predictive_patrol",
    } <= names
