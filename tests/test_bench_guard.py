"""Unit tests for the benchmark-regression guard."""

import copy

import pytest

from repro.bench.guard import (
    BENCH_NAME,
    SCHEMA_VERSION,
    GuardReport,
    compare,
    load_baseline,
    write_baseline,
)


def make_doc(**metric_overrides):
    metrics = {
        "wall_seconds": 0.5,
        "maintain_seconds": 0.3,
        "access_seconds": 0.2,
        "candidate_units": 10_000,
        "reachable_units": 2_000,
        "cells_accessed": 40,
        "distance_rows": 123_456,
        "page_reads": 300,
        "array_hits": 90,
        "final_sk": 3.0,
    }
    metrics.update(metric_overrides)
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": {"python": "3.11"},
        "profiles": {
            "smoke": {
                "workload": {"n_units": 200, "seed": 7},
                "schemes": {"opt": {"indexed": dict(metrics)}},
            }
        },
    }


class TestCompare:
    def test_identical_documents_match(self):
        report = compare(make_doc(), make_doc())
        assert report.findings == []
        assert report.ok(strict=True)
        assert "match" in report.render()

    def test_machine_metadata_is_not_compared(self):
        current = make_doc()
        current["machine"] = {"python": "3.12", "numpy": "9.9"}
        assert compare(make_doc(), current).findings == []

    def test_counter_regression_is_flagged_but_not_fatal(self):
        current = make_doc(candidate_units=12_000)  # +20%
        report = compare(make_doc(), current)
        assert [f.kind for f in report.findings] == ["regression"]
        assert not report.findings[0].wall
        assert report.ok()  # default policy: warn only
        assert not report.ok(strict=True)

    def test_counter_improvement_is_flagged(self):
        report = compare(make_doc(), make_doc(distance_rows=60_000))
        assert [f.kind for f in report.findings] == ["improvement"]
        assert report.ok(strict=True)

    def test_counter_within_tolerance_passes(self):
        report = compare(make_doc(), make_doc(candidate_units=10_100))  # +1%
        assert report.findings == []

    def test_wall_regression_never_fails_even_strict(self):
        report = compare(make_doc(), make_doc(wall_seconds=5.0))
        assert [f.kind for f in report.findings] == ["regression"]
        assert report.findings[0].wall
        assert report.ok(strict=True)

    def test_bench_name_mismatch_is_structural(self):
        current = make_doc()
        current["bench"] = "something-else"
        report = compare(make_doc(), current)
        assert report.structural
        assert not report.ok()

    def test_schema_version_mismatch_is_structural(self):
        current = make_doc()
        current["version"] = SCHEMA_VERSION + 1
        assert not compare(make_doc(), current).ok()

    def test_workload_parameter_change_is_structural(self):
        current = make_doc()
        current["profiles"]["smoke"]["workload"]["seed"] = 8
        report = compare(make_doc(), current)
        assert report.structural
        assert not report.ok()

    def test_scheme_set_mismatch_is_structural(self):
        current = make_doc()
        current["profiles"]["smoke"]["schemes"]["basic"] = copy.deepcopy(
            current["profiles"]["smoke"]["schemes"]["opt"]
        )
        assert not compare(make_doc(), current).ok()

    def test_mode_set_mismatch_is_structural(self):
        current = make_doc()
        modes = current["profiles"]["smoke"]["schemes"]["opt"]
        modes["linear"] = copy.deepcopy(modes["indexed"])
        assert not compare(make_doc(), current).ok()

    def test_profile_missing_from_baseline_is_structural(self):
        current = make_doc()
        current["profiles"]["default"] = copy.deepcopy(
            current["profiles"]["smoke"]
        )
        assert not compare(make_doc(), current).ok()

    def test_current_may_skip_baseline_profiles(self):
        # a smoke-only CI run must not be failed for skipping "default".
        baseline = make_doc()
        baseline["profiles"]["default"] = copy.deepcopy(
            baseline["profiles"]["smoke"]
        )
        assert compare(baseline, make_doc()).findings == []

    def test_missing_metric_is_structural(self):
        current = make_doc()
        del current["profiles"]["smoke"]["schemes"]["opt"]["indexed"][
            "distance_rows"
        ]
        assert not compare(make_doc(), current).ok()

    def test_zero_baseline_counter_change_is_flagged(self):
        baseline = make_doc(array_hits=0)
        report = compare(baseline, make_doc(array_hits=5))
        assert [f.kind for f in report.findings] == ["regression"]


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "bench.json"
        doc = make_doc()
        write_baseline(path, doc)
        assert load_baseline(path) == doc
        # canonical form: sorted keys and a trailing newline.
        text = path.read_text()
        assert text.endswith("}\n")
        assert text.index('"bench"') < text.index('"version"')

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_baseline(tmp_path / "absent.json")


def test_report_counts_by_kind():
    report = compare(
        make_doc(), make_doc(candidate_units=20_000, distance_rows=1_000)
    )
    assert len(report.regressions) == 1
    assert len(report.improvements) == 1
    assert "1 regression" in report.render()


def test_committed_baseline_is_structurally_current():
    """The repo's own BENCH_hotpath.json must parse and self-compare clean."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    doc = load_baseline(root / "BENCH_hotpath.json")
    report = compare(doc, doc)
    assert report.findings == []
    assert set(doc["profiles"]) == {"smoke", "default"}
    for prof in doc["profiles"].values():
        assert set(prof["schemes"]) == {"naive", "basic", "opt"}
        for modes in prof["schemes"].values():
            assert set(modes) == {"indexed", "linear"}


def test_committed_reconfig_baseline_keeps_the_speedup_floor():
    """BENCH_reconfig.json must self-compare clean and hold the 5x floor.

    The committed baseline is the contract: incremental place-adds beat
    per-event rebuilds by at least 5x at |P| = 2000, with zero rebuild
    fallbacks on the incremental side.
    """
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    doc = load_baseline(root / "BENCH_reconfig.json")
    report = compare(
        doc,
        doc,
        bench="reconfig",
        counter_metrics=(
            "cells_accessed",
            "places_loaded",
            "page_reads",
            "rebuilds",
            "epoch",
            "final_sk",
        ),
        wall_metrics=("apply_seconds",),
    )
    assert report.findings == []
    smoke = doc["profiles"]["smoke"]
    assert smoke["workload"]["n_places"] == 2_000
    assert smoke["speedup_x"] >= 5.0
    modes = smoke["schemes"]["opt"]
    assert set(modes) == {"incremental", "rebuild"}
    assert modes["incremental"]["rebuilds"] == 0
    assert modes["rebuild"]["rebuilds"] == smoke["workload"]["n_adds"]
