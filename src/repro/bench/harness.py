"""Monitor execution and measurement."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import SCHEMES
from repro.bench.workload import Workload
from repro.core import CTUPConfig
from repro.core.metrics import InitReport, MonitorCounters
from repro.core.units import UnitKernelStats
from repro.core.monitor import CTUPMonitor
from repro.engine.session import MonitorSession
from repro.model import Place, Unit
from repro.storage.iostats import IoStats
from repro.validate import Oracle

MonitorFactory = Callable[[CTUPConfig, Sequence[Place], Sequence[Unit]], CTUPMonitor]

#: the measurable schemes by their table name — the ``repro.api``
#: registry is the single source of truth.
MONITOR_FACTORIES: dict[str, MonitorFactory] = dict(SCHEMES)


@dataclass
class RunResult:
    """Measurements from one monitor over one workload."""

    algorithm: str
    init: InitReport
    counters: MonitorCounters
    #: counters restricted to the update phase (init work subtracted).
    update_counters: MonitorCounters
    io: IoStats
    #: reachability-prefilter work (candidate vs reachable units).
    unit_stats: UnitKernelStats
    #: prefilter work restricted to the update phase.
    update_unit_stats: UnitKernelStats
    n_updates: int
    wall_seconds: float
    final_sk: float
    validated: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def init_ms(self) -> float:
        return self.init.seconds * 1e3

    @property
    def avg_update_ms(self) -> float:
        if self.n_updates == 0:
            return 0.0
        return self.wall_seconds / self.n_updates * 1e3

    @property
    def avg_maintain_ms(self) -> float:
        if self.n_updates == 0:
            return 0.0
        return self.counters.time_maintain_s / self.n_updates * 1e3

    @property
    def avg_access_ms(self) -> float:
        if self.n_updates == 0:
            return 0.0
        return self.counters.time_access_s / self.n_updates * 1e3

    @property
    def cells_per_update(self) -> float:
        if self.n_updates == 0:
            return 0.0
        init_cells = self.init.cells_accessed
        return (self.counters.cells_accessed - init_cells) / self.n_updates


def run_monitor(
    algorithm: str,
    config: CTUPConfig,
    workload: Workload,
    updates: int | None = None,
    validate: bool = True,
    factory: MonitorFactory | None = None,
) -> RunResult:
    """Initialize a monitor, replay the stream, measure, and self-check.

    When ``validate`` is on, the final reported top-k is checked against
    the brute-force oracle — every benchmark run doubles as an
    end-to-end correctness test.
    """
    if factory is None:
        try:
            factory = MONITOR_FACTORIES[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"pick one of {sorted(MONITOR_FACTORIES)}"
            ) from None
    monitor = factory(config, workload.places, workload.units)
    init = monitor.initialize()
    after_init = monitor.counters.snapshot()
    after_init_units = monitor.units.stats.snapshot()
    stream = workload.stream if updates is None else workload.stream.prefix(updates)
    # change tracking is off: reading top_k() after every update would
    # charge result-view I/O to the measured run.
    session = MonitorSession(monitor, track_changes=False)
    session.start()
    start = time.perf_counter()
    n = session.run(stream)
    wall = time.perf_counter() - start
    validated = False
    if validate:
        oracle = Oracle(workload.places, workload.units)
        for update in stream:
            oracle.apply(update)
        verdict = oracle.validate(monitor.top_k(), config.k)
        if not verdict.ok:
            raise AssertionError(
                f"{algorithm} reported an invalid top-k after {n} updates: "
                f"{verdict.problems[:5]}"
            )
        validated = True
    return RunResult(
        algorithm=algorithm,
        init=init,
        counters=monitor.counters.snapshot(),
        update_counters=monitor.counters.snapshot() - after_init,
        io=monitor.store.io_stats.snapshot(),
        unit_stats=monitor.units.stats.snapshot(),
        update_unit_stats=monitor.units.stats.snapshot() - after_init_units,
        n_updates=n,
        wall_seconds=wall,
        final_sk=monitor.sk(),
        validated=validated,
    )
