"""Batch update processing.

Location updates arrive in bursts — one wireless poll cycle can deliver
dozens. Processing them one by one runs the access loop (§IV-E step 3)
after *every* message even though the answer is only read after the
burst. :class:`BatchProcessor` applies a whole batch's cheap work first
(maintained-safety adjustments and Table II bound maintenance, which
commute across updates) and runs the access loop once at the end.

This is exact, not approximate: bound maintenance is per-update sound
regardless of when cells are accessed, and the final access loop
restores the "no bound below SK" invariant before any result is read.
What changes is the cost — a cell whose bound dips below SK and
recovers within one burst (a unit passing by) is never touched.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.metrics import UpdateReport
from repro.core.opt import OptCTUP
from repro.model import LocationUpdate


class BatchProcessor:
    """Exact burst processing on top of an OptCTUP monitor."""

    def __init__(self, monitor: OptCTUP) -> None:
        if not isinstance(monitor, OptCTUP):
            raise TypeError("batch processing is defined for OptCTUP")
        self.monitor = monitor
        self.batches_processed = 0
        self.updates_processed = 0

    def process_batch(self, updates: Sequence[LocationUpdate]) -> UpdateReport:
        """Apply a burst of updates; the result is current afterwards.

        Returns one report covering the whole batch (its ``unit_id`` is
        the last update's).
        """
        monitor = self.monitor
        monitor._require_initialized()
        if not updates:
            raise ValueError("empty batch")
        start = time.perf_counter()
        radius = monitor.config.protection_range
        for update in updates:
            old = monitor.units.apply(update)
            new = update.new_location
            scanned = monitor.maintained.apply_unit_move(old, new, radius)
            monitor.counters.maintained_scans += scanned
            monitor.counters.distance_rows += 2 * scanned
            monitor._adjust_bounds(update.unit_id, old, new, radius)
        mid = time.perf_counter()
        accessed = monitor._access_below_sk()
        end = time.perf_counter()

        monitor.counters.updates_processed += len(updates)
        monitor.counters.time_maintain_s += mid - start
        monitor.counters.time_access_s += end - mid
        monitor.counters.maintained_peak = max(
            monitor.counters.maintained_peak, len(monitor.maintained)
        )
        self.batches_processed += 1
        self.updates_processed += len(updates)
        return UpdateReport(
            unit_id=updates[-1].unit_id,
            sk=monitor.sk(),
            cells_accessed=accessed,
            maintain_seconds=mid - start,
            access_seconds=end - mid,
        )

    def run_stream(
        self, updates: Iterable[LocationUpdate], batch_size: int
    ) -> int:
        """Chop a stream into fixed-size batches and process them all."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        pending: list[LocationUpdate] = []
        count = 0
        for update in updates:
            pending.append(update)
            if len(pending) == batch_size:
                self.process_batch(pending)
                count += len(pending)
                pending = []
        if pending:
            self.process_batch(pending)
            count += len(pending)
        return count
